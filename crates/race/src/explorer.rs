//! The deterministic interleaving explorer (only compiled under
//! `--cfg bao_race`).
//!
//! Real OS threads, serialized: a single execution token (one mutex + one
//! condvar) admits exactly one thread at a time, and every shim operation
//! is a *schedule point* where the token holder decides — against the
//! model's enabled set — which thread runs next. Each run follows a replay
//! prefix of branch decisions; when the prefix runs out the scheduler
//! defaults to "keep running the current thread". Completed runs are
//! backtracked depth-first: the deepest decision with an untried
//! alternative within the preemption budget seeds the next prefix
//! (CHESS-style bounded preemption: switching away from a still-enabled
//! thread costs 1, forced switches are free).
//!
//! On any model failure the first detecting thread stores the report,
//! wakes everyone, and all threads unwind with a quiet payload
//! (`resume_unwind` skips the panic hook, so aborted runs don't spray
//! backtraces); the driver reads the failure out of the controller.

use crate::model::{site_str, Exec, Failure, LockGraph, ModelState, Op};
use bao_common::sync::hooks::{self, RaceHooks};
use bao_common::sync::Site;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::ThreadId;

/// Panic payload for scheduler-initiated unwinds. Raised via
/// `resume_unwind`, so the default panic hook (and its backtrace noise)
/// never runs for aborts the explorer itself caused.
struct QuietAbort;

fn quiet_abort() -> ! {
    resume_unwind(Box::new(QuietAbort))
}

/// One recorded branch point: how many runnable alternatives existed, which
/// was taken, and whether the switch was forced (current thread disabled).
#[derive(Clone, Copy, Debug)]
struct Decision {
    nalts: usize,
    chosen: usize,
    forced: bool,
}

struct RunSt {
    model: ModelState,
    /// Model tid currently holding the execution token.
    current: usize,
    /// Branch-decision prefix to replay this run.
    replay: Vec<usize>,
    next_decision: usize,
    trace: Vec<Decision>,
    /// Real thread -> model tid. Never iterated, so map order is moot.
    tids: HashMap<ThreadId, usize>,
}

pub struct Controller {
    st: Mutex<RunSt>,
    cv: Condvar,
}

impl Controller {
    fn new(replay: Vec<usize>, graph: LockGraph) -> Controller {
        Controller {
            st: Mutex::new(RunSt {
                model: ModelState::new(graph),
                current: 0,
                replay,
                next_decision: 0,
                trace: Vec::new(),
                tids: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Called on the root thread before the body runs.
    fn begin_root(&self) {
        let mut st = self.lock();
        st.current = 0;
        st.tids.insert(std::thread::current().id(), 0);
    }

    fn lock(&self) -> MutexGuard<'_, RunSt> {
        self.st.lock().expect("controller state")
    }

    fn my_tid(st: &RunSt) -> Option<usize> {
        st.tids.get(&std::thread::current().id()).copied()
    }

    /// Abort the whole run: everyone parked wakes, sees the failure, and
    /// unwinds quietly.
    fn abort(&self, st: MutexGuard<'_, RunSt>) -> ! {
        self.cv.notify_all();
        drop(st);
        quiet_abort()
    }

    /// Runnable threads at a decision made by `tid`: `tid` first if still
    /// enabled (so replay index 0 always means "keep running"), then the
    /// others in ascending tid order.
    fn alternatives(m: &ModelState, tid: usize) -> Vec<usize> {
        let mut alts = Vec::new();
        if m.enabled(tid) {
            alts.push(tid);
        }
        for t in 0..m.threads.len() {
            if t != tid && m.enabled(t) {
                alts.push(t);
            }
        }
        alts
    }

    /// Consume the next replay index (or default 0) for a branch with
    /// `nalts` alternatives, recording the decision.
    fn decide(&self, st: &mut RunSt, nalts: usize, forced: bool) -> usize {
        let k = if st.next_decision < st.replay.len() {
            st.replay[st.next_decision]
        } else {
            0
        };
        if k >= nalts {
            st.model.failure =
                Some(Failure::ReplayDiverged { at_decision: st.next_decision });
            return 0;
        }
        st.next_decision += 1;
        st.trace.push(Decision { nalts, chosen: k, forced });
        k
    }

    /// The heart of the scheduler: park at a schedule point with `op`
    /// pending, decide who runs next, and return once this thread's op has
    /// been executed by the model.
    fn sched_op(&self, op: Op) -> Exec {
        let mut st = self.lock();
        let Some(tid) = Self::my_tid(&st) else {
            // A thread outside the model touched a hooked object (e.g. a
            // leak into a non-explorer thread): treat as passthrough.
            return Exec::Unit;
        };
        if st.model.failure.is_some() {
            self.abort(st);
        }
        debug_assert_eq!(st.current, tid, "op from a thread not holding the token");
        st.model.set_pending(tid, op);
        let alts = Self::alternatives(&st.model, tid);
        if alts.is_empty() {
            st.model.fail_deadlock();
            self.abort(st);
        }
        let forced = alts[0] != tid;
        let k = if alts.len() > 1 { self.decide(&mut st, alts.len(), forced) } else { 0 };
        if st.model.failure.is_some() {
            self.abort(st);
        }
        let chosen = alts[k];
        if chosen != tid {
            st.current = chosen;
            self.cv.notify_all();
            while st.current != tid {
                if st.model.failure.is_some() {
                    self.abort(st);
                }
                st = self.cv.wait(st).expect("controller state");
            }
            if st.model.failure.is_some() {
                self.abort(st);
            }
        }
        // We hold the token and our op is enabled (the granter checked).
        let out = st.model.exec(tid);
        if st.model.failure.is_some() {
            self.abort(st);
        }
        out
    }

    /// Non-scheduling bookkeeping (registrations, sender counts). Runs
    /// under the state lock on whichever thread holds the token.
    fn with_state<R>(&self, f: impl FnOnce(&mut ModelState) -> R) -> Option<R> {
        if std::thread::panicking() {
            return None;
        }
        let mut st = self.lock();
        if st.model.failure.is_some() {
            return None;
        }
        Some(f(&mut st.model))
    }

    /// Run-over check used by the driver after the root returns.
    fn take_results(&self) -> (Vec<Decision>, Option<Failure>, LockGraph) {
        let mut st = self.lock();
        let trace = st.trace.clone();
        let failure = st.model.failure.clone();
        let graph = std::mem::take(&mut st.model.lock_graph);
        (trace, failure, graph)
    }
}

impl RaceHooks for Controller {
    fn mutex_register(&self, site: Site) -> usize {
        self.with_state(|m| m.register_mutex(site_str(site))).unwrap_or(0)
    }

    fn mutex_lock(&self, id: usize, site: Site) {
        self.sched_op(Op::Lock { id, site: site_str(site) });
    }

    fn mutex_unlock(&self, id: usize) {
        // Guards also drop during quiet-abort unwinding; scheduling then
        // would panic-in-panic. The model is frozen post-failure anyway.
        if std::thread::panicking() {
            return;
        }
        self.sched_op(Op::Unlock { id });
    }

    fn chan_register(&self, site: Site) -> usize {
        self.with_state(|m| m.register_channel(site_str(site))).unwrap_or(0)
    }

    fn chan_send(&self, id: usize, site: Site) -> bool {
        !matches!(self.sched_op(Op::Send { id, site: site_str(site) }), Exec::SendClosed)
    }

    fn chan_recv(&self, id: usize, site: Site) -> bool {
        matches!(self.sched_op(Op::Recv { id, site: site_str(site) }), Exec::RecvOk)
    }

    fn chan_sender_cloned(&self, id: usize) {
        self.with_state(|m| m.sender_cloned(id));
    }

    fn chan_sender_dropped(&self, id: usize) {
        self.with_state(|m| m.sender_dropped(id));
    }

    fn chan_receiver_dropped(&self, id: usize) {
        self.with_state(|m| m.receiver_dropped(id));
    }

    fn cell_register(&self, site: Site) -> usize {
        self.with_state(|m| m.register_cell(site_str(site))).unwrap_or(0)
    }

    fn cell_access(&self, id: usize, write: bool, site: Site) {
        let site = site_str(site);
        let op = if write { Op::CellWrite { id, site } } else { Op::CellRead { id, site } };
        self.sched_op(op);
    }

    fn thread_spawn(&self, site: Site) -> usize {
        match self.sched_op(Op::Spawn { site: site_str(site) }) {
            Exec::Spawned(tid) => tid,
            _ => 0, // passthrough thread (not in the model)
        }
    }

    fn thread_start(&self, tid: usize) {
        let mut st = self.lock();
        st.tids.insert(std::thread::current().id(), tid);
        st.model.set_pending(tid, Op::Start);
        // Wake the parent blocked in thread_await_start.
        self.cv.notify_all();
        while st.current != tid {
            if st.model.failure.is_some() {
                self.abort(st);
            }
            st = self.cv.wait(st).expect("controller state");
        }
        if st.model.failure.is_some() {
            self.abort(st);
        }
        st.model.exec(tid);
    }

    fn thread_await_start(&self, tid: usize) {
        // The parent holds the token; it only waits for the child to park
        // (pending `Start`), so the enabled set is deterministic before the
        // parent's next schedule point. Not a schedule point itself.
        let mut st = self.lock();
        while st.model.threads[tid].pending.is_none() {
            if st.model.failure.is_some() {
                self.abort(st);
            }
            st = self.cv.wait(st).expect("controller state");
        }
    }

    fn thread_exit(&self, tid: usize) {
        let mut st = self.lock();
        if st.model.failure.is_some() {
            self.abort(st);
        }
        debug_assert_eq!(st.current, tid);
        st.model.set_pending(tid, Op::Exit);
        st.model.exec_exit(tid);
        // Hand the token to a successor. Exit executes eagerly (it has no
        // data effects beyond publishing the exit clock), so the only
        // decision is who runs next — a forced, free switch.
        let alts = Self::alternatives(&st.model, tid);
        if alts.is_empty() {
            if !st.model.all_finished() {
                st.model.fail_deadlock();
                self.abort(st);
            }
            self.cv.notify_all();
            return;
        }
        let k = if alts.len() > 1 { self.decide(&mut st, alts.len(), true) } else { 0 };
        if st.model.failure.is_some() {
            self.abort(st);
        }
        st.current = alts[k];
        self.cv.notify_all();
    }

    fn thread_join(&self, tid: usize, site: Site) {
        self.sched_op(Op::Join { tid, site: site_str(site) });
    }
}

// ---------------------------------------------------------------------------
// DFS driver
// ---------------------------------------------------------------------------

/// Result of one exploration.
#[derive(Debug)]
pub struct Outcome {
    /// Distinct interleavings actually run.
    pub interleavings: usize,
    pub failure: Option<Failure>,
    /// True when the bounded-preemption schedule space was fully explored
    /// (rather than stopping at `max_interleavings`).
    pub exhausted: bool,
}

impl Outcome {
    /// Panic with the rendered report on any failure; returns the
    /// interleaving count on success. The assertion helper suites use.
    pub fn expect_clean(self) -> usize {
        if let Some(f) = &self.failure {
            panic!("bao-race: {}\n(after {} interleavings)", f, self.interleavings);
        }
        self.interleavings
    }

    pub fn expect_failure(self) -> Failure {
        match self.failure {
            Some(f) => f,
            None => panic!(
                "bao-race: expected a failure but {} interleavings ran clean (exhausted: {})",
                self.interleavings, self.exhausted
            ),
        }
    }
}

/// Deepest decision with an untried alternative inside the preemption
/// budget; the returned prefix seeds the next run.
fn next_replay(trace: &[Decision], max_preemptions: usize) -> Option<Vec<usize>> {
    // Preemptions consumed strictly before each decision.
    let mut used = 0usize;
    let before: Vec<usize> = trace
        .iter()
        .map(|d| {
            let u = used;
            if !d.forced && d.chosen > 0 {
                used += 1;
            }
            u
        })
        .collect();
    for i in (0..trace.len()).rev() {
        let d = trace[i];
        let next_k = d.chosen + 1;
        if next_k >= d.nalts {
            continue;
        }
        // Any non-zero choice at a non-forced branch preempts the current
        // thread.
        let cost = usize::from(!d.forced);
        if before[i] + cost > max_preemptions {
            continue;
        }
        let mut replay: Vec<usize> = trace[..i].iter().map(|d| d.chosen).collect();
        replay.push(next_k);
        return Some(replay);
    }
    None
}

/// Deterministic DFS explorer with bounded preemption.
pub struct Explorer {
    pub name: &'static str,
    /// Hard cap on runs (keeps `--race-smoke` inside its budget).
    pub max_interleavings: usize,
    /// CHESS preemption bound.
    pub max_preemptions: usize,
}

impl Explorer {
    pub fn new(name: &'static str, max_interleavings: usize, max_preemptions: usize) -> Explorer {
        Explorer { name, max_interleavings, max_preemptions }
    }

    /// Run `body` under every schedule (up to the bounds), checking each
    /// for data races, lock-order cycles, and deadlock, and requiring the
    /// returned bytes to be identical across all interleavings.
    pub fn check<F>(&self, body: F) -> Outcome
    where
        F: Fn() -> Vec<u8> + Sync,
    {
        let mut graph = LockGraph::default();
        let mut replay: Vec<usize> = Vec::new();
        let mut reference: Option<Vec<u8>> = None;
        let mut interleavings = 0usize;
        loop {
            let ctl = Arc::new(Controller::new(replay, std::mem::take(&mut graph)));
            let result = run_once(&ctl, &body);
            interleavings += 1;
            let (trace, failure, g) = ctl.take_results();
            graph = g;
            if let Some(f) = failure {
                return Outcome { interleavings, failure: Some(f), exhausted: false };
            }
            let bytes = match result {
                Ok(b) => b,
                // A user panic with no model failure is a genuine bug in
                // the body; surface it as-is.
                Err(payload) => resume_unwind(payload),
            };
            if let Some(r) = &reference {
                if *r != bytes {
                    let first_diff = r.iter().zip(&bytes).position(|(a, b)| a != b);
                    return Outcome {
                        interleavings,
                        failure: Some(Failure::NonDeterminism {
                            interleaving: interleavings,
                            len_first: r.len(),
                            len_this: bytes.len(),
                            first_diff,
                        }),
                        exhausted: false,
                    };
                }
            } else {
                reference = Some(bytes);
            }
            if interleavings >= self.max_interleavings {
                return Outcome { interleavings, failure: None, exhausted: false };
            }
            match next_replay(&trace, self.max_preemptions) {
                Some(r) => replay = r,
                None => return Outcome { interleavings, failure: None, exhausted: true },
            }
        }
    }
}

fn run_once<F>(ctl: &Arc<Controller>, body: &F) -> std::thread::Result<Vec<u8>>
where
    F: Fn() -> Vec<u8> + Sync,
{
    let res = catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            s.spawn(|| {
                hooks::set_current(Some(ctl.clone() as hooks::HooksRef));
                ctl.begin_root();
                let out = body();
                ctl.thread_exit(0);
                hooks::set_current(None);
                out
            })
            .join()
        })
    }));
    // Flatten: a panic escaping the scope (root panicked and the scope
    // re-raised) and a panic reported through join are the same case.
    match res {
        Ok(join_res) => join_res,
        Err(payload) => Err(payload),
    }
}
