//! bao-race: an in-tree deterministic concurrency checker (loom/CHESS
//! spirit, hermetic like everything else in the workspace).
//!
//! Three pieces:
//!
//! * [`model`] — the sequentially-consistent execution model: vector-clock
//!   happens-before, per-object mutex/channel/cell state, a
//!   cross-interleaving lock-order graph, and readable failure reports.
//!   Always compiled; unit-tested by plain `cargo test`.
//! * [`explorer`] — the schedule explorer: real threads serialized by an
//!   execution token, DFS over branch decisions with a CHESS-style
//!   preemption bound, byte-identity checks across interleavings. Only
//!   compiled under `--cfg bao_race`, because it needs the instrumented
//!   side of `bao_common::sync` (see DESIGN.md §12 and
//!   `scripts/check.sh --race-smoke`).
//! * [`report`] — persists `race_interleavings_explored` per suite into
//!   `results/race_report.json` and the warn-only headline baselines.

pub mod model;
pub mod report;

#[cfg(bao_race)]
pub mod explorer;

#[cfg(bao_race)]
pub use explorer::{Explorer, Outcome};
pub use model::Failure;

/// Is this build compiled with `--cfg bao_race` (i.e. can the explorer
/// run)?
pub fn race_enabled() -> bool {
    cfg!(bao_race)
}
