//! The sequentially-consistent execution model the explorer runs programs
//! against: vector clocks for happens-before, per-object state for every
//! shim-registered mutex/channel/cell/thread, a cross-interleaving
//! lock-order graph, and the failure reports the whole crate exists to
//! produce.
//!
//! Everything here is pure data-structure code — no threads, no cfg — so
//! the checker's core logic is exercised by ordinary `cargo test` even
//! though the explorer itself only compiles under `--cfg bao_race`.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A source location rendered as `file:line:col`. The shim hands us
/// `&'static std::panic::Location`s; the model stores display strings so
/// reports and unit tests stay independent of real locations.
pub type SiteStr = String;

pub fn site_str(loc: &'static std::panic::Location<'static>) -> SiteStr {
    format!("{}:{}:{}", loc.file(), loc.line(), loc.column())
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over model thread ids. Component `t` counts the schedule
/// points thread `t` has executed; joins propagate on every
/// synchronization edge (lock hand-off, channel message, spawn, join).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }
}

/// One recorded access to a [`RaceCell`](bao_common::sync::RaceCell): who,
/// at which epoch of their own clock, from where.
#[derive(Clone, Debug)]
pub struct Access {
    pub tid: usize,
    pub epoch: u64,
    pub write: bool,
    pub site: SiteStr,
}

impl Access {
    /// Does this access happen-before a thread whose clock is `clock`?
    /// The FastTrack epoch test: `e <= clock[tid]`.
    fn happens_before(&self, clock: &VClock) -> bool {
        self.epoch <= clock.get(self.tid)
    }
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// A schedule-point operation a thread is about to perform. Set as the
/// thread's `pending` op when it reaches the schedule point; executed by
/// [`ModelState::exec`] once the explorer grants the thread the token.
#[derive(Clone, Debug)]
pub enum Op {
    /// First schedule point of a freshly spawned thread.
    Start,
    Lock { id: usize, site: SiteStr },
    Unlock { id: usize },
    Send { id: usize, site: SiteStr },
    Recv { id: usize, site: SiteStr },
    CellRead { id: usize, site: SiteStr },
    CellWrite { id: usize, site: SiteStr },
    Spawn { site: SiteStr },
    Exit,
    Join { tid: usize, site: SiteStr },
}

impl Op {
    fn describe(&self, m: &ModelState) -> String {
        match self {
            Op::Start => "start".to_string(),
            Op::Lock { id, site } => {
                format!("lock mutex created at {} (from {})", m.mutexes[*id].site, site)
            }
            Op::Unlock { id } => format!("unlock mutex created at {}", m.mutexes[*id].site),
            Op::Send { id, site } => {
                format!("send on channel created at {} (from {})", m.channels[*id].site, site)
            }
            Op::Recv { id, site } => {
                format!("recv on channel created at {} (from {})", m.channels[*id].site, site)
            }
            Op::CellRead { id, site } => {
                format!("read cell created at {} (from {})", m.cells[*id].site, site)
            }
            Op::CellWrite { id, site } => {
                format!("write cell created at {} (from {})", m.cells[*id].site, site)
            }
            Op::Spawn { site } => format!("spawn (from {})", site),
            Op::Exit => "exit".to_string(),
            Op::Join { tid, site } => format!("join thread #{} (from {})", tid, site),
        }
    }
}

/// Result of executing a pending op, for ops whose shim-side behavior
/// depends on the model's answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exec {
    Unit,
    SendOk,
    /// Send on a channel whose receiver is gone (`SendError`).
    SendClosed,
    RecvOk,
    /// Recv on an empty channel with no senders left (`RecvError`).
    RecvClosed,
    Spawned(usize),
}

// ---------------------------------------------------------------------------
// Per-object state
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ThreadSt {
    pub alive: bool,
    pub pending: Option<Op>,
    pub clock: VClock,
    /// Mutexes currently held: `(mutex id, acquisition site)`.
    pub held: Vec<(usize, SiteStr)>,
    pub exit_clock: Option<VClock>,
}

#[derive(Clone, Debug)]
pub struct MutexSt {
    pub site: SiteStr,
    pub owner: Option<usize>,
    /// Clock of the last releaser; joined into each acquirer.
    pub clock: VClock,
}

#[derive(Clone, Debug)]
pub struct ChanSt {
    pub site: SiteStr,
    /// Sender clocks of queued messages, in send order. The real channel
    /// carries the values; the model carries the happens-before edges.
    pub queue: VecDeque<VClock>,
    pub senders: usize,
    pub receiver_alive: bool,
}

#[derive(Clone, Debug)]
pub struct CellSt {
    pub site: SiteStr,
    pub last_write: Option<Access>,
    /// Most recent read per thread since the last write.
    pub reads: Vec<Access>,
}

// ---------------------------------------------------------------------------
// Lock-order graph
// ---------------------------------------------------------------------------

/// Witness for one lock-order edge: while holding a mutex created at the
/// `from` site (acquired at `held_at`), a thread acquired a mutex created
/// at the `to` site (at `acquired_at`).
#[derive(Clone, Debug)]
pub struct EdgeCtx {
    pub thread: usize,
    pub held_at: SiteStr,
    pub acquired_at: SiteStr,
}

/// One edge of a reported cycle, with both acquisition sites.
#[derive(Clone, Debug)]
pub struct CycleEdge {
    pub held_site: SiteStr,
    pub then_site: SiteStr,
    pub ctx: EdgeCtx,
}

/// Lock-order graph keyed by mutex *creation site* (lockdep-style), so
/// evidence accumulates across every interleaving of an exploration — a
/// cycle is reported even if no single run deadlocks.
#[derive(Debug, Default)]
pub struct LockGraph {
    index: BTreeMap<SiteStr, usize>,
    sites: Vec<SiteStr>,
    edges: BTreeMap<(usize, usize), EdgeCtx>,
}

impl LockGraph {
    fn node(&mut self, site: &str) -> usize {
        if let Some(&i) = self.index.get(site) {
            return i;
        }
        let i = self.sites.len();
        self.sites.push(site.to_string());
        self.index.insert(site.to_string(), i);
        i
    }

    /// Record `from_site -> to_site`; returns the cycle (as reportable
    /// edges) if this edge closes one.
    pub fn add_edge(
        &mut self,
        from_site: &str,
        to_site: &str,
        ctx: EdgeCtx,
    ) -> Option<Vec<CycleEdge>> {
        let from = self.node(from_site);
        let to = self.node(to_site);
        self.edges.entry((from, to)).or_insert(ctx);
        // A cycle through the new edge exists iff `from` is reachable
        // from `to`. (`from == to` is the degenerate self-cycle.)
        let path = self.path(to, from)?;
        let mut cycle = Vec::new();
        let mut nodes = vec![from, to];
        nodes.extend(path.iter().skip(1));
        for w in nodes.windows(2) {
            let ctx = self.edges[&(w[0], w[1])].clone();
            cycle.push(CycleEdge {
                held_site: self.sites[w[0]].clone(),
                then_site: self.sites[w[1]].clone(),
                ctx,
            });
        }
        Some(cycle)
    }

    /// A path `start -> ... -> goal` over recorded edges (DFS, node order
    /// deterministic via the BTreeMap), or None.
    fn path(&self, start: usize, goal: usize) -> Option<Vec<usize>> {
        let mut stack = vec![vec![start]];
        let mut seen = vec![false; self.sites.len()];
        seen[start] = true;
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("non-empty path");
            if last == goal {
                return Some(path);
            }
            for (&(f, t), _) in self.edges.range((last, 0)..(last + 1, 0)) {
                debug_assert_eq!(f, last);
                if !seen[t] {
                    seen[t] = true;
                    let mut p = path.clone();
                    p.push(t);
                    stack.push(p);
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Failures
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct BlockedInfo {
    pub thread: usize,
    pub op: String,
    pub holds: Vec<SiteStr>,
}

/// Everything the checker can find. `Display` renders the human report the
/// acceptance criteria call "readable two-stack".
#[derive(Clone, Debug)]
pub enum Failure {
    DataRace {
        cell_site: SiteStr,
        first: Access,
        second: Access,
    },
    LockCycle {
        cycle: Vec<CycleEdge>,
    },
    Deadlock {
        blocked: Vec<BlockedInfo>,
    },
    NonDeterminism {
        interleaving: usize,
        len_first: usize,
        len_this: usize,
        first_diff: Option<usize>,
    },
    /// A replayed schedule prefix stopped matching the program — the body
    /// under test is itself nondeterministic in its sync structure.
    ReplayDiverged {
        at_decision: usize,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::DataRace { cell_site, first, second } => {
                writeln!(f, "data race on cell created at {}", cell_site)?;
                for (label, a) in [("first", first), ("second", second)] {
                    writeln!(
                        f,
                        "  {} access: thread #{} {} at {} (epoch {})",
                        label,
                        a.tid,
                        if a.write { "write" } else { "read" },
                        a.site,
                        a.epoch
                    )?;
                }
                write!(f, "  no happens-before edge orders these accesses")
            }
            Failure::LockCycle { cycle } => {
                writeln!(f, "lock-order cycle over {} mutex site(s):", cycle.len())?;
                for e in cycle {
                    writeln!(
                        f,
                        "  thread #{} held mutex[{}] (acquired at {})\n    then acquired mutex[{}] at {}",
                        e.ctx.thread, e.held_site, e.ctx.held_at, e.then_site, e.ctx.acquired_at
                    )?;
                }
                write!(f, "  these acquisition orders cannot all be safe")
            }
            Failure::Deadlock { blocked } => {
                writeln!(f, "deadlock: no runnable thread; blocked threads:")?;
                for b in blocked {
                    writeln!(f, "  thread #{} blocked on {}", b.thread, b.op)?;
                    for h in &b.holds {
                        writeln!(f, "    while holding mutex created at {}", h)?;
                    }
                }
                write!(f, "  every live thread waits on another")
            }
            Failure::NonDeterminism { interleaving, len_first, len_this, first_diff } => {
                write!(
                    f,
                    "nondeterministic result: interleaving #{} produced {} bytes vs {} in \
                     interleaving #1",
                    interleaving, len_this, len_first
                )?;
                if let Some(i) = first_diff {
                    write!(f, " (first differing byte at offset {})", i)?;
                }
                Ok(())
            }
            Failure::ReplayDiverged { at_decision } => write!(
                f,
                "schedule replay diverged at decision {} — the body's sync structure is \
                 not a pure function of the schedule",
                at_decision
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// The model
// ---------------------------------------------------------------------------

pub struct ModelState {
    pub threads: Vec<ThreadSt>,
    pub mutexes: Vec<MutexSt>,
    pub channels: Vec<ChanSt>,
    pub cells: Vec<CellSt>,
    pub lock_graph: LockGraph,
    pub failure: Option<Failure>,
}

impl ModelState {
    /// Fresh run. `lock_graph` carries edges accumulated by earlier
    /// interleavings of the same exploration.
    pub fn new(lock_graph: LockGraph) -> ModelState {
        let mut root_clock = VClock::default();
        root_clock.tick(0);
        ModelState {
            threads: vec![ThreadSt {
                alive: true,
                pending: None,
                clock: root_clock,
                held: Vec::new(),
                exit_clock: None,
            }],
            mutexes: Vec::new(),
            channels: Vec::new(),
            cells: Vec::new(),
            lock_graph,
            failure: None,
        }
    }

    pub fn register_mutex(&mut self, site: SiteStr) -> usize {
        self.mutexes.push(MutexSt { site, owner: None, clock: VClock::default() });
        self.mutexes.len() - 1
    }

    pub fn register_channel(&mut self, site: SiteStr) -> usize {
        self.channels.push(ChanSt {
            site,
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        });
        self.channels.len() - 1
    }

    pub fn register_cell(&mut self, site: SiteStr) -> usize {
        self.cells.push(CellSt { site, last_write: None, reads: Vec::new() });
        self.cells.len() - 1
    }

    pub fn sender_cloned(&mut self, id: usize) {
        self.channels[id].senders += 1;
    }

    pub fn sender_dropped(&mut self, id: usize) {
        self.channels[id].senders = self.channels[id].senders.saturating_sub(1);
    }

    pub fn receiver_dropped(&mut self, id: usize) {
        self.channels[id].receiver_alive = false;
    }

    pub fn set_pending(&mut self, tid: usize, op: Op) {
        debug_assert!(self.threads[tid].pending.is_none(), "thread already pending");
        self.threads[tid].pending = Some(op);
    }

    /// May `tid`'s pending op execute now?
    pub fn enabled(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        if !t.alive {
            return false;
        }
        match &t.pending {
            None => false,
            Some(Op::Lock { id, .. }) => self.mutexes[*id].owner.is_none(),
            Some(Op::Recv { id, .. }) => {
                let c = &self.channels[*id];
                !c.queue.is_empty() || c.senders == 0
            }
            Some(Op::Join { tid: child, .. }) => !self.threads[*child].alive,
            Some(_) => true,
        }
    }

    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| !t.alive)
    }

    /// Execute `tid`'s pending op. The caller (explorer) guarantees the op
    /// is enabled. May set `self.failure` (data race / lock cycle).
    pub fn exec(&mut self, tid: usize) -> Exec {
        let op = self.threads[tid].pending.take().expect("pending op");
        self.threads[tid].clock.tick(tid);
        match op {
            Op::Start => Exec::Unit,
            Op::Lock { id, site } => {
                self.check_lock_order(tid, id, &site);
                let m = &mut self.mutexes[id];
                debug_assert!(m.owner.is_none());
                m.owner = Some(tid);
                let mclock = m.clock.clone();
                self.threads[tid].clock.join(&mclock);
                self.threads[tid].held.push((id, site));
                Exec::Unit
            }
            Op::Unlock { id } => {
                let released = self.threads[tid].clock.clone();
                let m = &mut self.mutexes[id];
                debug_assert_eq!(m.owner, Some(tid));
                m.owner = None;
                m.clock = released;
                self.threads[tid].held.retain(|(h, _)| *h != id);
                Exec::Unit
            }
            Op::Send { id, .. } => {
                let sent = self.threads[tid].clock.clone();
                let c = &mut self.channels[id];
                if !c.receiver_alive {
                    return Exec::SendClosed;
                }
                c.queue.push_back(sent);
                Exec::SendOk
            }
            Op::Recv { id, .. } => match self.channels[id].queue.pop_front() {
                Some(sender_clock) => {
                    self.threads[tid].clock.join(&sender_clock);
                    Exec::RecvOk
                }
                None => {
                    debug_assert_eq!(self.channels[id].senders, 0);
                    Exec::RecvClosed
                }
            },
            Op::CellRead { id, site } => {
                self.check_cell_access(tid, id, false, site);
                Exec::Unit
            }
            Op::CellWrite { id, site } => {
                self.check_cell_access(tid, id, true, site);
                Exec::Unit
            }
            Op::Spawn { .. } => {
                let mut clock = self.threads[tid].clock.clone();
                let child = self.threads.len();
                clock.tick(child);
                self.threads.push(ThreadSt {
                    alive: true,
                    pending: None,
                    clock,
                    held: Vec::new(),
                    exit_clock: None,
                });
                Exec::Spawned(child)
            }
            Op::Exit => unreachable!("Exit goes through exec_exit"),
            Op::Join { tid: child, .. } => {
                let ec = self.threads[child]
                    .exit_clock
                    .clone()
                    .expect("joined thread has exited");
                self.threads[tid].clock.join(&ec);
                Exec::Unit
            }
        }
    }

    /// Execute an `Exit` — split out because the thread transitions to
    /// dead rather than producing a normal outcome.
    pub fn exec_exit(&mut self, tid: usize) {
        let op = self.threads[tid].pending.take();
        debug_assert!(matches!(op, Some(Op::Exit)));
        self.threads[tid].clock.tick(tid);
        let t = &mut self.threads[tid];
        t.alive = false;
        t.exit_clock = Some(t.clock.clone());
    }

    fn check_lock_order(&mut self, tid: usize, id: usize, site: &str) {
        let to_site = self.mutexes[id].site.clone();
        let held: Vec<(usize, SiteStr)> = self.threads[tid].held.clone();
        for (hid, held_at) in held {
            let from_site = self.mutexes[hid].site.clone();
            let ctx = EdgeCtx {
                thread: tid,
                held_at,
                acquired_at: site.to_string(),
            };
            if let Some(cycle) = self.lock_graph.add_edge(&from_site, &to_site, ctx) {
                self.failure = Some(Failure::LockCycle { cycle });
                return;
            }
        }
    }

    fn check_cell_access(&mut self, tid: usize, id: usize, write: bool, site: SiteStr) {
        let clock = self.threads[tid].clock.clone();
        let access = Access { tid, epoch: clock.get(tid), write, site };
        let cell = &mut self.cells[id];
        // A write must be ordered after the previous write and every read
        // since it; a read must be ordered after the previous write.
        let mut conflict = None;
        if let Some(w) = &cell.last_write {
            if w.tid != tid && !w.happens_before(&clock) {
                conflict = Some(w.clone());
            }
        }
        if write && conflict.is_none() {
            conflict = cell
                .reads
                .iter()
                .find(|r| r.tid != tid && !r.happens_before(&clock))
                .cloned();
        }
        if let Some(first) = conflict {
            self.failure = Some(Failure::DataRace {
                cell_site: cell.site.clone(),
                first,
                second: access,
            });
            return;
        }
        if write {
            cell.reads.clear();
            cell.last_write = Some(access);
        } else {
            cell.reads.retain(|r| r.tid != tid);
            cell.reads.push(access);
        }
    }

    /// No thread is runnable but live threads remain: build the deadlock
    /// report from every blocked thread's pending op and held locks.
    pub fn fail_deadlock(&mut self) {
        let blocked = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.alive)
            .map(|(tid, t)| BlockedInfo {
                thread: tid,
                op: t
                    .pending
                    .as_ref()
                    .map(|op| op.describe(self))
                    .unwrap_or_else(|| "running (no schedule point)".to_string()),
                holds: t.held.iter().map(|(id, _)| self.mutexes[*id].site.clone()).collect(),
            })
            .collect();
        self.failure = Some(Failure::Deadlock { blocked });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock(m: &mut ModelState, tid: usize, id: usize, site: &str) {
        m.set_pending(tid, Op::Lock { id, site: site.to_string() });
        assert!(m.enabled(tid));
        m.exec(tid);
    }

    fn unlock(m: &mut ModelState, tid: usize, id: usize) {
        m.set_pending(tid, Op::Unlock { id });
        m.exec(tid);
    }

    fn spawn(m: &mut ModelState, tid: usize) -> usize {
        m.set_pending(tid, Op::Spawn { site: "t.rs:1:1".into() });
        match m.exec(tid) {
            Exec::Spawned(t) => {
                m.set_pending(t, Op::Start);
                m.exec(t);
                t
            }
            other => panic!("expected spawn, got {other:?}"),
        }
    }

    fn access(m: &mut ModelState, tid: usize, id: usize, write: bool, site: &str) {
        let op = if write {
            Op::CellWrite { id, site: site.to_string() }
        } else {
            Op::CellRead { id, site: site.to_string() }
        };
        m.set_pending(tid, op);
        m.exec(tid);
    }

    #[test]
    fn mutex_orders_cell_accesses() {
        let mut m = ModelState::new(LockGraph::default());
        let mx = m.register_mutex("m.rs:1:1".into());
        let cell = m.register_cell("c.rs:1:1".into());
        let t1 = spawn(&mut m, 0);
        // Root writes under the mutex, t1 reads under the mutex: the
        // release->acquire edge orders the accesses.
        lock(&mut m, 0, mx, "a.rs:10:5");
        access(&mut m, 0, cell, true, "a.rs:11:5");
        unlock(&mut m, 0, mx);
        lock(&mut m, t1, mx, "b.rs:20:5");
        access(&mut m, t1, cell, false, "b.rs:21:5");
        unlock(&mut m, t1, mx);
        assert!(m.failure.is_none(), "{:?}", m.failure);
    }

    #[test]
    fn unguarded_write_write_is_a_race() {
        let mut m = ModelState::new(LockGraph::default());
        let cell = m.register_cell("c.rs:1:1".into());
        let t1 = spawn(&mut m, 0);
        access(&mut m, 0, cell, true, "a.rs:11:5");
        access(&mut m, t1, cell, true, "b.rs:21:5");
        match &m.failure {
            Some(Failure::DataRace { first, second, .. }) => {
                assert_eq!(first.tid, 0);
                assert_eq!(second.tid, t1);
                assert_eq!(first.site, "a.rs:11:5");
                assert_eq!(second.site, "b.rs:21:5");
                let report = m.failure.as_ref().unwrap().to_string();
                assert!(report.contains("a.rs:11:5") && report.contains("b.rs:21:5"));
            }
            other => panic!("expected DataRace, got {other:?}"),
        }
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut m = ModelState::new(LockGraph::default());
        let cell = m.register_cell("c.rs:1:1".into());
        let t1 = spawn(&mut m, 0);
        access(&mut m, 0, cell, false, "a.rs:1:1");
        access(&mut m, t1, cell, false, "b.rs:1:1");
        assert!(m.failure.is_none());
    }

    #[test]
    fn write_after_unordered_read_is_a_race() {
        let mut m = ModelState::new(LockGraph::default());
        let cell = m.register_cell("c.rs:1:1".into());
        let t1 = spawn(&mut m, 0);
        access(&mut m, t1, cell, false, "b.rs:1:1");
        access(&mut m, 0, cell, true, "a.rs:2:2");
        assert!(matches!(m.failure, Some(Failure::DataRace { .. })), "{:?}", m.failure);
    }

    #[test]
    fn channel_message_creates_happens_before() {
        let mut m = ModelState::new(LockGraph::default());
        let ch = m.register_channel("ch.rs:1:1".into());
        let cell = m.register_cell("c.rs:1:1".into());
        let t1 = spawn(&mut m, 0);
        access(&mut m, 0, cell, true, "a.rs:1:1");
        m.set_pending(0, Op::Send { id: ch, site: "a.rs:2:1".into() });
        assert_eq!(m.exec(0), Exec::SendOk);
        m.set_pending(t1, Op::Recv { id: ch, site: "b.rs:1:1".into() });
        assert!(m.enabled(t1));
        assert_eq!(m.exec(t1), Exec::RecvOk);
        // The recv joined the sender's clock: t1's read is now ordered.
        access(&mut m, t1, cell, false, "b.rs:2:1");
        assert!(m.failure.is_none(), "{:?}", m.failure);
    }

    #[test]
    fn recv_disabled_until_message_or_close() {
        let mut m = ModelState::new(LockGraph::default());
        let ch = m.register_channel("ch.rs:1:1".into());
        let t1 = spawn(&mut m, 0);
        m.set_pending(t1, Op::Recv { id: ch, site: "b.rs:1:1".into() });
        assert!(!m.enabled(t1));
        m.sender_dropped(ch);
        assert!(m.enabled(t1), "closed channel enables recv (as RecvClosed)");
        assert_eq!(m.exec(t1), Exec::RecvClosed);
    }

    #[test]
    fn lock_inversion_reported_across_runs() {
        // Run 1 sees A then B; run 2 (fresh model, same graph) sees B then
        // A. Neither run deadlocks, but the graph catches the inversion.
        let mut graph = LockGraph::default();
        {
            let mut m = ModelState::new(std::mem::take(&mut graph));
            let a = m.register_mutex("a.rs:1:1".into());
            let b = m.register_mutex("b.rs:1:1".into());
            lock(&mut m, 0, a, "x.rs:10:1");
            lock(&mut m, 0, b, "x.rs:11:1");
            unlock(&mut m, 0, b);
            unlock(&mut m, 0, a);
            assert!(m.failure.is_none());
            graph = m.lock_graph;
        }
        let mut m = ModelState::new(graph);
        let a = m.register_mutex("a.rs:1:1".into());
        let b = m.register_mutex("b.rs:1:1".into());
        lock(&mut m, 0, b, "y.rs:20:1");
        m.set_pending(0, Op::Lock { id: a, site: "y.rs:21:1".to_string() });
        m.exec(0);
        match &m.failure {
            Some(Failure::LockCycle { cycle }) => {
                assert_eq!(cycle.len(), 2);
                let report = m.failure.as_ref().unwrap().to_string();
                // Both acquisition stacks are present.
                assert!(report.contains("x.rs:11:1"), "{report}");
                assert!(report.contains("y.rs:21:1"), "{report}");
            }
            other => panic!("expected LockCycle, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_report_lists_blockers() {
        let mut m = ModelState::new(LockGraph::default());
        let a = m.register_mutex("a.rs:1:1".into());
        let b = m.register_mutex("b.rs:1:1".into());
        let t1 = spawn(&mut m, 0);
        lock(&mut m, 0, a, "x.rs:1:1");
        lock(&mut m, t1, b, "y.rs:1:1");
        m.set_pending(0, Op::Lock { id: b, site: "x.rs:2:1".to_string() });
        m.set_pending(t1, Op::Lock { id: a, site: "y.rs:2:1".to_string() });
        assert!(!m.enabled(0) && !m.enabled(t1));
        m.fail_deadlock();
        let report = m.failure.as_ref().unwrap().to_string();
        assert!(report.contains("thread #0") && report.contains("thread #1"), "{report}");
        assert!(report.contains("a.rs:1:1") && report.contains("b.rs:1:1"), "{report}");
    }

    #[test]
    fn send_to_dropped_receiver_reports_closed() {
        let mut m = ModelState::new(LockGraph::default());
        let ch = m.register_channel("ch.rs:1:1".into());
        m.receiver_dropped(ch);
        m.set_pending(0, Op::Send { id: ch, site: "a.rs:1:1".into() });
        assert_eq!(m.exec(0), Exec::SendClosed);
    }
}
