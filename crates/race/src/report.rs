//! Coverage reporting: how many interleavings each suite actually
//! explored. Counts land in `results/race_report.json` (committed, so
//! coverage regressions show up in diffs) and as warn-only
//! `race_interleavings_<suite>` headlines in the bench baseline store.

use bao_common::json::{self, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn report_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/race_report.json")
}

/// Record `interleavings` for `suite`, merging with whatever other suites
/// already wrote. Suites in one test binary may run on parallel test
/// threads, so the read-modify-write is serialized process-wide.
pub fn record_suite(suite: &str, interleavings: usize) {
    // bao-lint: allow(no-raw-sync) — checker internals are shim-exempt.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _g = LOCK.lock().expect("race report lock");

    let path = report_path();
    let mut entries: BTreeMap<String, u64> = BTreeMap::new();
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(j) = json::parse(&text) {
            if let Some(suites) = j.get("race_interleavings_explored") {
                if let Json::Obj(fields) = suites {
                    for (k, v) in fields {
                        if let Some(n) = v.as_u64() {
                            entries.insert(k.clone(), n);
                        }
                    }
                }
            }
        }
    }
    entries.insert(suite.to_string(), interleavings as u64);

    let fields: Vec<(String, Json)> =
        entries.iter().map(|(k, v)| (k.clone(), Json::U(*v))).collect();
    let doc = Json::Obj(vec![(
        "race_interleavings_explored".to_string(),
        Json::Obj(fields),
    )]);
    // Test-only telemetry, not recoverable state; deliberately not WAL'd.
    // bao-lint: allow(no-unlogged-persistence)
    if let Err(e) = std::fs::write(&path, doc.to_string_pretty() + "\n") {
        // Diagnostics from a test-only reporting path; warn-only on purpose.
        // bao-lint: allow(no-println)
        println!("WARNING: could not write race report: {e}");
    }

    bao_bench::timing::note_headlines(
        &[(format!("race_interleavings_{suite}"), interleavings as f64)],
        false,
    );
}
