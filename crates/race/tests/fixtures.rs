//! Detection fixtures: small programs with known-good and known-bad
//! concurrency, checking both that the explorer passes clean code and —
//! just as important — that it *detects* the planted bugs with readable
//! reports. Only meaningful under the instrumented shim, hence the crate
//! cfg (run via `scripts/check.sh --race-smoke`).
#![cfg(bao_race)]

use bao_common::sync::{mpsc, scope, Mutex, RaceCell};
use bao_race::explorer::Explorer;
use bao_race::model::Failure;

#[test]
fn mutex_guarded_cell_is_clean() {
    let n = Explorer::new("guarded_cell", 500, 2)
        .check(|| {
            let m = Mutex::new(());
            let c = RaceCell::new(0u32);
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let _g = m.lock().expect("guard");
                        c.update(|v| v + 1);
                    });
                }
            });
            vec![c.get() as u8]
        })
        .expect_clean();
    assert!(n >= 3, "expected multiple interleavings, got {n}");
}

#[test]
fn unguarded_counter_race_detected() {
    let f = Explorer::new("racy_counter", 500, 2)
        .check(|| {
            let c = RaceCell::new(0u32);
            scope(|s| {
                s.spawn(|| c.update(|v| v + 1));
                s.spawn(|| c.update(|v| v + 1));
            });
            vec![c.get() as u8]
        })
        .expect_failure();
    match &f {
        Failure::DataRace { first, second, .. } => {
            let report = f.to_string();
            // Both access sites point into this file: a readable
            // two-stack report.
            assert!(report.contains("tests/fixtures.rs"), "{report}");
            assert_ne!(first.tid, second.tid, "{report}");
            assert!(first.write || second.write, "{report}");
        }
        other => panic!("expected DataRace, got {other}"),
    }
}

#[test]
fn lock_inversion_detected_with_both_stacks() {
    let f = Explorer::new("lock_inversion", 1000, 2)
        .check(|| {
            let a = Mutex::new(0u8);
            let b = Mutex::new(0u8);
            scope(|s| {
                s.spawn(|| {
                    let _ga = a.lock().expect("a");
                    let _gb = b.lock().expect("b");
                });
                s.spawn(|| {
                    let _gb = b.lock().expect("b");
                    let _ga = a.lock().expect("a");
                });
            });
            Vec::new()
        })
        .expect_failure();
    match &f {
        Failure::LockCycle { cycle } => {
            assert_eq!(cycle.len(), 2, "{f}");
            let report = f.to_string();
            // Two distinct held-then-acquired stacks, each with its
            // acquisition site in this file.
            assert!(report.matches("then acquired").count() >= 2, "{report}");
            assert!(report.contains("tests/fixtures.rs"), "{report}");
        }
        // Depending on schedule order the cycle may first materialize as
        // an actual deadlock; both are correct detections, but the graph
        // fires first under DFS order, so require the cycle report.
        other => panic!("expected LockCycle, got {other}"),
    }
}

#[test]
fn cross_channel_wait_deadlock_detected() {
    let f = Explorer::new("chan_deadlock", 500, 2)
        .check(|| {
            let (tx_in, rx_in) = mpsc::channel::<u8>();
            let (tx_out, rx_out) = mpsc::channel::<u8>();
            scope(|s| {
                s.spawn(move || {
                    // Echo worker: waits for input the root never sends.
                    if let Ok(v) = rx_in.recv() {
                        let _ = tx_out.send(v);
                    }
                });
                // Root waits for output first — cyclic wait, no mutexes.
                let _ = rx_out.recv();
                let _ = tx_in.send(1);
            });
            Vec::new()
        })
        .expect_failure();
    match &f {
        Failure::Deadlock { blocked } => {
            assert_eq!(blocked.len(), 2, "{f}");
            let report = f.to_string();
            assert!(report.contains("recv on channel"), "{report}");
        }
        other => panic!("expected Deadlock, got {other}"),
    }
}

#[test]
fn order_dependent_output_detected() {
    let f = Explorer::new("nondeterministic_log", 500, 2)
        .check(|| {
            let log: Mutex<Vec<u8>> = Mutex::new(Vec::new());
            scope(|s| {
                for i in 0..2u8 {
                    let log = &log;
                    s.spawn(move || log.lock().expect("log").push(i));
                }
            });
            log.into_inner().expect("log")
        })
        .expect_failure();
    match &f {
        Failure::NonDeterminism { first_diff, .. } => {
            assert_eq!(*first_diff, Some(0), "{f}");
        }
        other => panic!("expected NonDeterminism, got {other}"),
    }
}

#[test]
fn slot_tagged_pipeline_is_deterministic() {
    // The workspace's pool idiom in miniature: jobs through one shared
    // queue, results re-slotted by tag — deterministic no matter which
    // worker wins each job.
    let n = Explorer::new("slot_pipeline", 2000, 2)
        .check(|| {
            let (job_tx, job_rx) = mpsc::channel::<(usize, u8)>();
            let job_rx = bao_common::sync::Arc::new(Mutex::new(job_rx));
            let (res_tx, res_rx) = mpsc::channel::<(usize, u8)>();
            scope(|s| {
                for _ in 0..2 {
                    let job_rx = bao_common::sync::Arc::clone(&job_rx);
                    let res_tx = res_tx.clone();
                    s.spawn(move || loop {
                        let job = { job_rx.lock().expect("jobs").recv() };
                        match job {
                            Ok((slot, x)) => {
                                if res_tx.send((slot, x * 2)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    });
                }
                for (slot, x) in [(0usize, 3u8), (1, 5), (2, 7)] {
                    job_tx.send((slot, x)).expect("workers alive");
                }
                drop(job_tx);
                drop(res_tx);
                let mut slots = vec![0u8; 3];
                for (slot, r) in res_rx {
                    slots[slot] = r;
                }
                slots
            })
        })
        .expect_clean();
    assert!(n >= 10, "expected a rich schedule space, got {n}");
}
