//! The four production race suites from DESIGN.md §12: every concurrent
//! path in the workspace, explored exhaustively (bounded preemption) under
//! the instrumented `bao_common::sync` shim.
//!
//! 1. `training_pool` — the `bao_nn::train` persistent worker pool
//!    (2 workers × 3 minibatches of 2 shard-jobs each).
//! 2. `planning_fanout` — `Bao::evaluate_arms_multi`'s slot-tagged
//!    planner pool (2 workers over 4 (query, arm) jobs).
//! 3. `sched_serving_handoff` — the full sched → serving wave loop,
//!    including a mid-run retrain so post-retrain waves exercise the
//!    scoring fan-out against the new model.
//! 4. `morsel_pool` — the executor's morsel work-stealing pool
//!    (`bao_exec::run_jobs`, DESIGN.md §13): 2 workers × 4 morsel jobs.
//!
//! Each suite asserts zero races / zero lock-order cycles / byte-identical
//! output across ≥ 200 distinct interleavings, then records the explored
//! count into `results/race_report.json`.
//!
//! Smoke runs bound each suite's interleaving cap so the whole pass stays
//! within ~60s; `BAO_RACE_UNBOUNDED=1` (the `scripts/check.sh
//! --race-nightly` stage) lifts every cap so the bounded-preemption space
//! is explored to completion.
#![cfg(bao_race)]

use bao_common::json::ToJson;
use bao_common::SimDuration;
use bao_core::{Bao, BaoConfig};
use bao_harness::{
    BaoSettings, ModelKind, RunConfig, RunResult, ServingConfig, ServingRunner, Strategy,
};
use bao_nn::{train, FeatTree, TcnnConfig, TrainConfig, TreeCnn};
use bao_opt::{HintSet, Optimizer};
use bao_race::explorer::Explorer;
use bao_race::report::record_suite;
use bao_sched::{QueryArrival, SchedConfig, TenantSpec, WavePolicy};
use bao_sql::parse_query;
use bao_stats::StatsCatalog;
use bao_storage::{ColumnDef, Database, DataType, Schema, Table, Value};

/// Interleaving cap for one suite. Priority order:
///
/// 1. `BAO_RACE_BUDGET=<n>` — an explicit bound, so nightly runs of
///    suites whose full bounded-preemption space is impractically large
///    (`sched_serving_handoff`) still record a reproducible count in
///    `results/race_report.json` instead of being skipped or running
///    forever.
/// 2. `BAO_RACE_UNBOUNDED` — explore the bounded-preemption space to
///    completion (the nightly mode for the suites that terminate).
/// 3. Otherwise the suite's smoke default.
fn cap(smoke_default: usize) -> usize {
    if let Ok(v) = std::env::var("BAO_RACE_BUDGET") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    match std::env::var("BAO_RACE_UNBOUNDED") {
        Ok(v) if !v.is_empty() && v != "0" => usize::MAX,
        _ => smoke_default,
    }
}

/// Deterministic little synthetic training set: 3-node trees whose target
/// is a function of the features. 12 trees / batch 4 / shard 2 ⇒ exactly
/// 3 minibatches of 2 shard-jobs per epoch.
fn training_data(n: usize) -> (Vec<FeatTree>, Vec<f32>) {
    let mut trees = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let a = (i % 5) as f32;
        let b = ((i * 7) % 3) as f32;
        let nodes = vec![vec![a, 1.0, 0.5], vec![b, 1.0, 0.25], vec![a + b, 1.0, 0.75]];
        trees.push(FeatTree::new(3, nodes, vec![1, -1, -1], vec![2, -1, -1]));
        ys.push(a * 2.0 + b + 1.0);
    }
    (trees, ys)
}

/// Suite 1: the training pool. All sync-bearing state (the net, the
/// channels, the workers) is created inside the body; the dataset is
/// immutable shared input.
#[test]
fn training_pool_suite() {
    let (trees, ys) = training_data(12);
    let cfg = TrainConfig {
        max_epochs: 1,
        batch_size: 4,
        shard_size: 2,
        threads: 2,
        seed: 11,
        ..TrainConfig::default()
    };
    let n = Explorer::new("training_pool", cap(600), 2)
        .check(|| {
            let mut net = TreeCnn::new(TcnnConfig::tiny(3), 17);
            let report = train(&mut net, &trees, &ys, &cfg);
            let mut bytes = Vec::new();
            for l in &report.loss_history {
                bytes.extend_from_slice(&l.to_le_bytes());
            }
            bytes.extend_from_slice(&net.predict(&trees[0]).to_le_bytes());
            bytes
        })
        .expect_clean();
    assert!(n >= 200, "training pool explored only {n} interleavings");
    record_suite("training_pool", n);
}

/// Small two-table IMDB-shaped database (the `bao_loop_tests` schema at
/// reduced row count): enough structure for hint-sensitive join plans,
/// cheap enough to plan hundreds of times.
fn tiny_db() -> (Database, StatsCatalog) {
    let mut title = Table::new(
        "title",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("kind", DataType::Int),
            ColumnDef::new("year", DataType::Int),
        ]),
    );
    for i in 0..400i64 {
        let kind = if i % 5 == 0 { 2 } else { 1 };
        let year = if kind == 2 { 2010 } else { 1950 + (i % 60) };
        title.insert(vec![Value::Int(i), Value::Int(kind), Value::Int(year)]).unwrap();
    }
    let mut ci = Table::new(
        "cast_info",
        Schema::new(vec![
            ColumnDef::new("movie_id", DataType::Int),
            ColumnDef::new("role", DataType::Int),
        ]),
    );
    for i in 0..1200i64 {
        ci.insert(vec![Value::Int((i * 31) % 400), Value::Int(i % 11)]).unwrap();
    }
    let mut db = Database::new();
    db.create_table(title).unwrap();
    db.create_table(ci).unwrap();
    db.create_index("title", "id").unwrap();
    db.create_index("cast_info", "movie_id").unwrap();
    let cat = StatsCatalog::analyze(&db, 400, 3);
    (db, cat)
}

/// Suite 2: the arm fan-out pool. Two queries × two arms = four jobs on a
/// pinned two-worker pool; planning is read-only over `(query, db, cat)`,
/// so the database is shared input and every shim object (job/result
/// channels, the receiver mutex, the scoped workers) is body-local.
#[test]
fn planning_fanout_suite() {
    let (db, cat) = tiny_db();
    let queries = vec![
        parse_query(
            "SELECT COUNT(*) FROM title t, cast_info ci \
             WHERE t.id = ci.movie_id AND t.kind = 2 AND t.year = 2010",
        )
        .unwrap(),
        parse_query("SELECT COUNT(*) FROM title t WHERE t.year >= 1999").unwrap(),
    ];
    let opt = Optimizer::postgres();
    let n = Explorer::new("planning_fanout", cap(600), 2)
        .check(|| {
            let bao = Bao::new(BaoConfig {
                arms: HintSet::top_arms(2),
                parallel_planning: true,
                planning_threads: 2,
                ..BaoConfig::default()
            });
            let qrefs: Vec<&_> = queries.iter().collect();
            let results = bao.evaluate_arms_multi(&opt, &qrefs, &db, &cat, None).unwrap();
            let mut bytes = Vec::new();
            for (sel, pairs) in &results {
                bytes.push(sel.arm as u8);
                bytes.push(sel.arms_planned as u8);
                for w in &sel.per_arm_work {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                // Full plan + featurization fingerprint: any re-slotting
                // bug (worker output landing in the wrong (query, arm)
                // slot) changes these bytes.
                bytes.extend_from_slice(format!("{pairs:?}").as_bytes());
            }
            bytes
        })
        .expect_clean();
    assert!(n >= 200, "planning fan-out explored only {n} interleavings");
    record_suite("planning_fanout", n);
}

/// Serialize a scheduled run for byte comparison; `wall_train` is the one
/// legitimately wall-clock field, so zero it (same rule as the
/// sched-equivalence tests).
fn canonical(mut r: RunResult) -> Vec<u8> {
    r.wall_train = std::time::Duration::ZERO;
    r.to_json().to_string().into_bytes()
}

/// Suite 3: the sched → serving wave handoff. Two tenants, six queries,
/// retrain interval 3 ⇒ the model retrains mid-run and the post-retrain
/// waves score their arm fan-out against the new weights. Everything
/// mutable (runner, scheduler, buffer pool, Bao state) is built inside
/// the body; only the workload description is shared input.
#[test]
fn sched_serving_handoff_suite() {
    let (db, wl) = bao_bench::build_workload(bao_bench::WorkloadName::Imdb, 0.01, 6, 7).unwrap();
    let settings = BaoSettings {
        model: ModelKind::TcnnFast,
        window: 6,
        retrain: 3,
        cache_features: false,
        planning_threads: 2,
        arms: HintSet::top_arms(2),
        ..BaoSettings::default()
    };
    let sched = SchedConfig {
        tenants: vec![TenantSpec::new("a").with_weight(2), TenantSpec::new("b").with_weight(1)],
        policy: WavePolicy::Drr,
        quantum: 1,
        shed_deadline: None,
    };
    let arrivals: Vec<QueryArrival> = (0..6)
        .map(|i| QueryArrival { idx: i, tenant: i % 2, arrival: SimDuration::ZERO })
        .collect();
    let n = Explorer::new("sched_serving_handoff", cap(220), 2)
        .check(|| {
            let cfg = RunConfig {
                seed: 7,
                stats_sample: 200,
                ..RunConfig::new(bao_cloud::N1_4, Strategy::Bao(settings.clone()))
            };
            let report = ServingRunner::new(cfg, db.clone(), ServingConfig::new(2, 2))
                .with_sched(sched.clone())
                .run_scheduled(&wl, &arrivals)
                .unwrap();
            let mut bytes = canonical(report.serving.result);
            for d in &report.dispatches {
                bytes.push(d.idx as u8);
                bytes.push(d.tenant as u8);
                bytes.push(d.shed as u8);
            }
            bytes
        })
        .expect_clean();
    assert!(n >= 200, "sched/serving handoff explored only {n} interleavings");
    record_suite("sched_serving_handoff", n);
}

/// Suite 4: the executor's morsel pool (DESIGN.md §13). Two workers pull
/// four morsel jobs off the shared job channel — the exact shape a
/// 2-shard scan splits into at small morsel size. The jobs are pure
/// compute over immutable shared input (like real morsel jobs: predicate
/// evaluation over a row range); the fingerprint is the slot-ordered
/// concatenation of every job's output, so any re-slotting or lost-job
/// bug changes the bytes.
#[test]
fn morsel_pool_suite() {
    // Immutable shared input: a little "column" the jobs filter.
    let col: Vec<i64> = (0..64).map(|i| (i * 37) % 101).collect();
    let ranges = [(0u32, 16u32), (16, 32), (32, 48), (48, 64)];
    let n = Explorer::new("morsel_pool", cap(600), 2)
        .check(|| {
            let parts = bao_exec::run_jobs(2, ranges.len(), |j| {
                let (lo, hi) = ranges[j];
                Ok((lo..hi).filter(|&r| col[r as usize] >= 50).collect::<Vec<u32>>())
            })
            .unwrap();
            let mut bytes = Vec::new();
            for (slot, rows) in parts.iter().enumerate() {
                bytes.push(slot as u8);
                bytes.push(rows.len() as u8);
                for r in rows {
                    bytes.extend_from_slice(&r.to_le_bytes());
                }
            }
            bytes
        })
        .expect_clean();
    assert!(n >= 200, "morsel pool explored only {n} interleavings");
    record_suite("morsel_pool", n);
}
