//! Multi-tenant admission control for the serving layer.
//!
//! `bao-sched` owns everything between "a query arrived" and "a query is
//! handed to the wave former": per-tenant bounded queues, deterministic
//! token-bucket rate limits over [`SimDuration`] sim-time, a
//! deficit-round-robin (DRR) wave former with strict priority classes,
//! and an overload policy that sheds queries to arm 0 (the unconstrained
//! optimizer's plan — Bao's built-in safe arm) instead of dropping them.
//!
//! Everything is sim-timed and deterministic: no wall clock, no RNG. The
//! single-tenant, unlimited-bucket default configuration dispatches in
//! exact arrival order, which keeps the serving layer bit-identical to
//! the pre-sched FIFO wave former (pinned by `tests/serving_equivalence.rs`
//! and `tests/sched_equivalence.rs`). See DESIGN.md §10.

pub mod report;
pub mod sched;
pub mod tenant;

pub use report::{jain_index, DistSummary, SchedReport, TenantReport};
pub use sched::{Dispatch, QueryArrival, SchedConfig, Scheduler, WavePolicy};
pub use tenant::{Priority, RateLimit, TenantId, TenantSpec, TokenBucket};
