//! Scheduler telemetry: per-tenant admission/shed counts, wait-time
//! distributions, and Jain's fairness index over weight-normalized
//! served work.

use crate::sched::SchedConfig;
use bao_common::{stats, Json, ToJson};

/// Summary statistics over a sample of simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    pub n: usize,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl DistSummary {
    pub fn from_samples(xs: &[f64]) -> DistSummary {
        if xs.is_empty() {
            return DistSummary { n: 0, mean: 0.0, p50: 0.0, p95: 0.0, p99: 0.0, max: 0.0 };
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        DistSummary {
            n: xs.len(),
            mean: stats::mean(&sorted),
            p50: stats::percentile_sorted(&sorted, 50.0),
            p95: stats::percentile_sorted(&sorted, 95.0),
            p99: stats::percentile_sorted(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
        }
    }
}

impl ToJson for DistSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", self.n.to_json()),
            ("mean", self.mean.to_json()),
            ("p50", self.p50.to_json()),
            ("p95", self.p95.to_json()),
            ("p99", self.p99.to_json()),
            ("max", self.max.to_json()),
        ])
    }
}

/// One tenant's slice of a run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub name: String,
    pub weight: u32,
    pub priority: &'static str,
    /// Arrivals released into the tenant's queue.
    pub admitted: usize,
    /// Dispatches executed (shed or scored — nothing is dropped).
    pub served: usize,
    /// Dispatches degraded to arm 0 (depth overflow or deadline).
    pub shed: usize,
    /// Plan-cache templates re-pinned to arm 0 after latency drift under
    /// overload (reported by the serving layer).
    pub drift_shed: usize,
    pub peak_queue_depth: usize,
    /// Queue-wait distribution, simulated milliseconds.
    pub wait_ms: DistSummary,
    /// Total simulated execution time served to this tenant.
    pub served_work_ms: f64,
}

impl ToJson for TenantReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("weight", self.weight.to_json()),
            ("priority", self.priority.to_json()),
            ("admitted", self.admitted.to_json()),
            ("served", self.served.to_json()),
            ("shed", self.shed.to_json()),
            ("drift_shed", self.drift_shed.to_json()),
            ("peak_queue_depth", self.peak_queue_depth.to_json()),
            ("wait_ms", self.wait_ms.to_json()),
            ("served_work_ms", self.served_work_ms.to_json()),
        ])
    }
}

/// Whole-run scheduling report (ToJson for persistence alongside the
/// serving report).
#[derive(Debug, Clone)]
pub struct SchedReport {
    pub policy: &'static str,
    pub waves: usize,
    pub tenants: Vec<TenantReport>,
    /// Jain's index over weight-normalized served work: 1.0 = perfectly
    /// weight-proportional, 1/n = one tenant got everything.
    pub jain_fairness: f64,
}

impl SchedReport {
    pub fn total_admitted(&self) -> usize {
        self.tenants.iter().map(|t| t.admitted).sum()
    }

    pub fn total_served(&self) -> usize {
        self.tenants.iter().map(|t| t.served).sum()
    }

    pub fn total_shed(&self) -> usize {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    pub fn total_drift_shed(&self) -> usize {
        self.tenants.iter().map(|t| t.drift_shed).sum()
    }

    /// Fraction of served queries that were degraded to arm 0.
    pub fn shed_rate(&self) -> f64 {
        let served = self.total_served();
        if served == 0 {
            0.0
        } else {
            self.total_shed() as f64 / served as f64
        }
    }

    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

impl ToJson for SchedReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("policy", self.policy.to_json()),
            ("waves", self.waves.to_json()),
            ("tenants", self.tenants.to_json()),
            ("total_admitted", self.total_admitted().to_json()),
            ("total_served", self.total_served().to_json()),
            ("total_shed", self.total_shed().to_json()),
            ("total_drift_shed", self.total_drift_shed().to_json()),
            ("shed_rate", self.shed_rate().to_json()),
            ("jain_fairness", self.jain_fairness.to_json()),
        ])
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative shares.
/// Defined as 1.0 for an empty or all-zero sample (nothing was unfair).
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    cfg: &SchedConfig,
    waves: usize,
    admitted: &[usize],
    served: &[usize],
    shed: &[usize],
    drift_shed: &[usize],
    peak_depth: &[usize],
    waits_ms: &[Vec<f64>],
    served_work_ms: &[f64],
) -> SchedReport {
    let tenants: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| TenantReport {
            name: spec.name.clone(),
            weight: spec.weight,
            priority: spec.priority.name(),
            admitted: admitted[t],
            served: served[t],
            shed: shed[t],
            drift_shed: drift_shed[t],
            peak_queue_depth: peak_depth[t],
            wait_ms: DistSummary::from_samples(&waits_ms[t]),
            served_work_ms: served_work_ms[t],
        })
        .collect();
    // Fairness over tenants that actually offered load; idle tenants
    // would read as "starved" when they simply had nothing to run.
    let shares: Vec<f64> = tenants
        .iter()
        .filter(|t| t.admitted > 0)
        .map(|t| t.served_work_ms / f64::from(t.weight.max(1)))
        .collect();
    SchedReport { policy: cfg.policy.name(), waves, tenants, jain_fairness: jain_index(&shares) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_brackets() {
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One tenant hogging everything: index collapses to 1/n.
        let skew = jain_index(&[9.0, 0.0, 0.0]);
        assert!((skew - 1.0 / 3.0).abs() < 1e-12, "{skew}");
        let mid = jain_index(&[2.0, 1.0]);
        assert!(mid > 1.0 / 2.0 && mid < 1.0);
    }

    #[test]
    fn dist_summary_orders_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = DistSummary::from_samples(&xs);
        assert_eq!(d.n, 100);
        assert!(d.p50 <= d.p95 && d.p95 <= d.p99 && d.p99 <= d.max);
        assert!((d.max - 100.0).abs() < 1e-12);
        let empty = DistSummary::from_samples(&[]);
        assert_eq!(empty.n, 0);
    }

    #[test]
    fn sched_report_serializes_with_totals() {
        let cfg = SchedConfig::single_tenant();
        let r = build_report(&cfg, 3, &[5], &[5], &[1], &[2], &[2], &[vec![1.0, 2.0]], &[10.0]);
        let j = r.to_json().to_string();
        assert!(j.contains("\"policy\":\"drr\""), "{j}");
        assert!(j.contains("\"total_shed\":1"), "{j}");
        assert!(j.contains("\"total_drift_shed\":2"), "{j}");
        assert!(j.contains("\"jain_fairness\":"), "{j}");
    }
}
