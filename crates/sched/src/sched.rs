//! The scheduler: bounded per-tenant queues, arrival release, and the
//! wave former (FIFO or deficit-round-robin with strict priority
//! classes).
//!
//! Sim-time flow: the serving layer `submit`s arrivals, then alternates
//! `release(now)` / `form_wave(now, cap)` as its wave clock advances,
//! using `next_ready(now)` to jump over idle gaps. Every decision is a
//! pure function of (config, submitted arrivals, the clamp-driven cap
//! sequence) — no wall clock, no RNG — so a run is exactly replayable.

use crate::tenant::{Priority, TenantId, TenantSpec, TokenBucket};
use bao_common::{BaoError, Result, SimDuration};
use std::collections::VecDeque;

/// Wave-forming policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WavePolicy {
    /// Global arrival order, tenant-blind (the pre-sched behaviour).
    Fifo,
    /// Deficit round robin across tenants, weight-proportional, within
    /// strict priority classes.
    Drr,
}

impl WavePolicy {
    pub fn name(self) -> &'static str {
        match self {
            WavePolicy::Fifo => "fifo",
            WavePolicy::Drr => "drr",
        }
    }
}

/// Scheduler configuration: the tenant registry plus global policy.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    pub tenants: Vec<TenantSpec>,
    pub policy: WavePolicy,
    /// DRR quantum: queries credited per weight point per round. The
    /// default of 1 gives the finest-grained interleaving.
    pub quantum: u32,
    /// Queries that have waited longer than this by dispatch time are
    /// shed to arm 0 (no TCNN scoring). `None` disables deadline shedding.
    pub shed_deadline: Option<SimDuration>,
}

impl SchedConfig {
    /// One unconstrained tenant under DRR — the configuration whose
    /// dispatch order is bit-identical to the historical FIFO former.
    pub fn single_tenant() -> SchedConfig {
        SchedConfig {
            tenants: vec![TenantSpec::new("default")],
            policy: WavePolicy::Drr,
            quantum: 1,
            shed_deadline: None,
        }
    }

    pub fn with_policy(mut self, policy: WavePolicy) -> SchedConfig {
        self.policy = policy;
        self
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::single_tenant()
    }
}

/// One query's arrival: which workload step, which tenant, and when (in
/// sim-time). The serving layer's closed-loop default is
/// [`QueryArrival::step`] — tenant 0, arrival at time zero — which
/// reproduces the tenant-blind FIFO behaviour exactly.
#[derive(Debug, Clone, Copy)]
pub struct QueryArrival {
    /// Workload step index this arrival executes.
    pub idx: usize,
    pub tenant: TenantId,
    pub arrival: SimDuration,
}

impl QueryArrival {
    /// Closed-loop default: tenant 0, already arrived at time zero.
    pub fn step(idx: usize) -> QueryArrival {
        QueryArrival { idx, tenant: 0, arrival: SimDuration::ZERO }
    }
}

/// A dispatch decision handed to the serving layer: execute step `idx`
/// for `tenant`; if `shed`, degrade to arm 0 with no TCNN scoring.
#[derive(Debug, Clone, Copy)]
pub struct Dispatch {
    pub idx: usize,
    pub tenant: TenantId,
    pub arrival: SimDuration,
    pub shed: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    idx: usize,
    arrival: SimDuration,
    seq: u64,
    shed: bool,
}

/// Per-class DRR state: the rotation order (tenant ids) plus a cursor
/// that persists across waves — a wave boundary must not restart the
/// round, or a heavy tenant at the front of the order would be
/// re-credited every wave and starve everyone behind it.
#[derive(Debug)]
struct ClassState {
    members: Vec<TenantId>,
    cursor: usize,
    /// Whether the tenant under the cursor has already received its
    /// quantum credit for the current visit (guards against double
    /// crediting when a wave fills mid-service and the next wave
    /// resumes at the same tenant).
    credited: bool,
}

/// The admission scheduler. See module docs for the driving protocol.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedConfig,
    /// Not-yet-arrived submissions, sorted by (arrival, seq).
    pending: VecDeque<Entry>,
    pending_tenant: VecDeque<TenantId>,
    queues: Vec<VecDeque<Entry>>,
    buckets: Vec<Option<TokenBucket>>,
    deficits: Vec<u64>,
    classes: Vec<ClassState>,
    next_seq: u64,
    // Telemetry, folded into `SchedReport` at the end of a run.
    admitted: Vec<usize>,
    served: Vec<usize>,
    shed: Vec<usize>,
    /// Plan-cache drift sheds: cached entries re-pinned to arm 0 under
    /// overload (reported by the serving layer via `note_drift_shed`).
    drift_shed: Vec<usize>,
    peak_depth: Vec<usize>,
    waits_ms: Vec<Vec<f64>>,
    served_work_ms: Vec<f64>,
}

impl Scheduler {
    pub fn new(cfg: SchedConfig) -> Result<Scheduler> {
        if cfg.tenants.is_empty() {
            return Err(BaoError::Config("scheduler needs at least one tenant".into()));
        }
        if cfg.quantum == 0 {
            return Err(BaoError::Config("DRR quantum must be >= 1".into()));
        }
        for t in &cfg.tenants {
            if t.weight == 0 {
                return Err(BaoError::Config(format!(
                    "tenant '{}' has weight 0; zero-weight tenants would starve \
                     (use Priority::Background for best-effort traffic)",
                    t.name
                )));
            }
            if let Some(r) = t.rate {
                if !(r.capacity.is_finite() && r.per_sec.is_finite()) || r.capacity < 1.0 {
                    return Err(BaoError::Config(format!(
                        "tenant '{}' has an invalid rate limit",
                        t.name
                    )));
                }
            }
        }
        let n = cfg.tenants.len();
        let mut classes = Vec::new();
        for p in [Priority::Interactive, Priority::Normal, Priority::Background] {
            let members: Vec<TenantId> =
                (0..n).filter(|&t| cfg.tenants[t].priority == p).collect();
            if !members.is_empty() {
                classes.push(ClassState { members, cursor: 0, credited: false });
            }
        }
        let buckets = cfg.tenants.iter().map(|t| t.rate.map(TokenBucket::new)).collect();
        Ok(Scheduler {
            pending: VecDeque::new(),
            pending_tenant: VecDeque::new(),
            queues: vec![VecDeque::new(); n],
            buckets,
            deficits: vec![0; n],
            classes,
            next_seq: 0,
            admitted: vec![0; n],
            served: vec![0; n],
            shed: vec![0; n],
            drift_shed: vec![0; n],
            peak_depth: vec![0; n],
            waits_ms: vec![Vec::new(); n],
            served_work_ms: vec![0.0; n],
            cfg,
        })
    }

    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Register a batch of arrivals. Arrivals may be submitted in any
    /// order; the pending set is kept sorted by (arrival, submission
    /// sequence), so ties release in submission order.
    pub fn submit(&mut self, arrivals: &[QueryArrival]) -> Result<()> {
        for a in arrivals {
            if a.tenant >= self.cfg.tenants.len() {
                return Err(BaoError::Config(format!(
                    "arrival for step {} names tenant {} but only {} are registered",
                    a.idx,
                    a.tenant,
                    self.cfg.tenants.len()
                )));
            }
            if !a.arrival.is_finite() {
                return Err(BaoError::Config(format!(
                    "arrival for step {} is not a finite sim-time",
                    a.idx
                )));
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push_back(Entry { idx: a.idx, arrival: a.arrival, seq, shed: false });
            self.pending_tenant.push_back(a.tenant);
        }
        // One stable sort per submit keeps release a cheap front-pop.
        let mut joined: Vec<(Entry, TenantId)> =
            self.pending.drain(..).zip(self.pending_tenant.drain(..)).collect();
        joined.sort_by(|a, b| {
            a.0.arrival
                .as_ms()
                .total_cmp(&b.0.arrival.as_ms())
                .then(a.0.seq.cmp(&b.0.seq))
        });
        for (e, t) in joined {
            self.pending.push_back(e);
            self.pending_tenant.push_back(t);
        }
        Ok(())
    }

    /// Move every pending arrival with `arrival <= now` into its
    /// tenant's queue. Arrivals released past the tenant's depth bound
    /// are marked shed (degraded admission — executed on arm 0, never
    /// dropped).
    pub fn release(&mut self, now: SimDuration) {
        while let Some(front) = self.pending.front() {
            if front.arrival > now {
                break;
            }
            let mut e = self.pending.pop_front().expect("front exists");
            let t = self.pending_tenant.pop_front().expect("tenant lane in lockstep");
            self.admitted[t] += 1;
            if let Some(bound) = self.cfg.tenants[t].queue_depth {
                if self.queues[t].len() >= bound {
                    e.shed = true;
                }
            }
            self.queues[t].push_back(e);
            self.peak_depth[t] = self.peak_depth[t].max(self.queues[t].len());
        }
    }

    /// Queries sitting in tenant queues (released, not yet dispatched).
    pub fn queued_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Queries submitted but not yet released.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn tenant_ready(&self, t: TenantId, now: SimDuration) -> bool {
        !self.queues[t].is_empty()
            && self.buckets[t].as_ref().map_or(true, |b| b.ready(now))
    }

    /// Whether at least one query could be dispatched at `now`.
    pub fn has_dispatchable(&self, now: SimDuration) -> bool {
        (0..self.queues.len()).any(|t| self.tenant_ready(t, now))
    }

    /// Earliest sim-time at or after `now` at which something could be
    /// released or dispatched: the next pending arrival or the next
    /// token-bucket refill of a backlogged tenant. `None` means the
    /// scheduler can never make progress again (drained, or every
    /// backlogged tenant has a dry zero-rate bucket).
    pub fn next_ready(&self, now: SimDuration) -> Option<SimDuration> {
        let mut best: Option<SimDuration> = None;
        let mut consider = |t: SimDuration| {
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        };
        if let Some(front) = self.pending.front() {
            consider(front.arrival.max(now));
        }
        for t in 0..self.queues.len() {
            if self.queues[t].is_empty() {
                continue;
            }
            match &self.buckets[t] {
                None => consider(now),
                Some(b) => {
                    if let Some(at) = b.ready_at(now) {
                        consider(at);
                    }
                }
            }
        }
        best
    }

    /// Form the next wave: up to `cap` dispatches at sim-time `now`.
    /// The cap carries every serving-layer clamp (concurrency, coalesce
    /// window, retrain boundary, cache-feature mode, epoch remainder);
    /// the scheduler only decides *which* queued queries fill it.
    pub fn form_wave(&mut self, now: SimDuration, cap: usize) -> Vec<Dispatch> {
        let mut out = Vec::new();
        if cap == 0 {
            return out;
        }
        match self.cfg.policy {
            WavePolicy::Fifo => self.form_fifo(now, cap, &mut out),
            WavePolicy::Drr => self.form_drr(now, cap, &mut out),
        }
        for d in &out {
            if d.shed {
                self.shed[d.tenant] += 1;
            }
        }
        out
    }

    /// Pop the queue head of tenant `t` as a dispatch, applying the
    /// deadline shed check and taking a token if the tenant is limited.
    fn pop_dispatch(&mut self, t: TenantId, now: SimDuration) -> Dispatch {
        if let Some(b) = self.buckets[t].as_mut() {
            let took = b.try_take(now);
            debug_assert!(took, "caller checked readiness");
        }
        let mut e = self.queues[t].pop_front().expect("caller checked non-empty");
        if let Some(deadline) = self.cfg.shed_deadline {
            if now - e.arrival > deadline {
                e.shed = true;
            }
        }
        Dispatch { idx: e.idx, tenant: t, arrival: e.arrival, shed: e.shed }
    }

    /// Tenant-blind global arrival order: repeatedly dispatch the ready
    /// tenant whose head entry has the smallest (arrival, seq). With one
    /// unlimited tenant this *is* the historical FIFO former.
    fn form_fifo(&mut self, now: SimDuration, cap: usize, out: &mut Vec<Dispatch>) {
        while out.len() < cap {
            let mut pick: Option<(TenantId, SimDuration, u64)> = None;
            for t in 0..self.queues.len() {
                if !self.tenant_ready(t, now) {
                    continue;
                }
                let head = self.queues[t].front().expect("ready implies non-empty");
                let better = match pick {
                    None => true,
                    Some((_, a, s)) => {
                        head.arrival
                            .as_ms()
                            .total_cmp(&a.as_ms())
                            .then(head.seq.cmp(&s))
                            .is_lt()
                    }
                };
                if better {
                    pick = Some((t, head.arrival, head.seq));
                }
            }
            match pick {
                Some((t, _, _)) => out.push(self.pop_dispatch(t, now)),
                None => break,
            }
        }
    }

    /// Strict priority classes; classic DRR within each class. Deficits
    /// and the round cursor persist across waves, so the dispatch stream
    /// is one continuous DRR schedule that the wave boundaries merely
    /// slice — this is what makes service bounded for every tenant (the
    /// starvation-freedom property test pins it).
    fn form_drr(&mut self, now: SimDuration, cap: usize, out: &mut Vec<Dispatch>) {
        for c in 0..self.classes.len() {
            while out.len() < cap {
                let any_eligible = self.classes[c]
                    .members
                    .iter()
                    .any(|&t| self.tenant_ready(t, now));
                if !any_eligible {
                    break;
                }
                let cur = self.classes[c].cursor;
                let t = self.classes[c].members[cur];
                if !self.tenant_ready(t, now) {
                    // Empty or rate-blocked: no credit, move on. Classic
                    // DRR zeroes the deficit of an emptied queue so idle
                    // tenants cannot hoard credit.
                    if self.queues[t].is_empty() {
                        self.deficits[t] = 0;
                    }
                    self.advance_cursor(c);
                    continue;
                }
                if !self.classes[c].credited {
                    self.deficits[t] +=
                        u64::from(self.cfg.quantum) * u64::from(self.cfg.tenants[t].weight);
                    self.classes[c].credited = true;
                }
                while self.deficits[t] >= 1
                    && out.len() < cap
                    && self.tenant_ready(t, now)
                {
                    out.push(self.pop_dispatch(t, now));
                    self.deficits[t] -= 1;
                }
                if self.queues[t].is_empty() {
                    self.deficits[t] = 0;
                }
                if out.len() >= cap {
                    // Wave filled mid-service: leave the cursor (and its
                    // credited flag) in place so the next wave resumes
                    // exactly where this one stopped.
                    if self.deficits[t] >= 1 && self.tenant_ready(t, now) {
                        return;
                    }
                    self.advance_cursor(c);
                    return;
                }
                self.advance_cursor(c);
            }
        }
    }

    fn advance_cursor(&mut self, c: usize) {
        let class = &mut self.classes[c];
        class.cursor = (class.cursor + 1) % class.members.len();
        class.credited = false;
    }

    /// Record that a dispatched query started executing after `wait` in
    /// queue and consumed `work` of simulated execution time.
    pub fn note_served(&mut self, d: &Dispatch, wait: SimDuration, work: SimDuration) {
        self.served[d.tenant] += 1;
        self.waits_ms[d.tenant].push(wait.max(SimDuration::ZERO).as_ms());
        self.served_work_ms[d.tenant] += work.max(SimDuration::ZERO).as_ms();
    }

    /// Record that the serving layer's plan cache drift-shed one of this
    /// tenant's templates to arm 0 under overload (the cache-side twin of
    /// the admission-side shed counter; DESIGN.md §11).
    pub fn note_drift_shed(&mut self, tenant: TenantId) {
        if let Some(c) = self.drift_shed.get_mut(tenant) {
            *c += 1;
        }
    }

    /// Fold the run's telemetry into a [`crate::SchedReport`].
    pub fn report(&self, waves: usize) -> crate::SchedReport {
        crate::report::build_report(
            &self.cfg,
            waves,
            &self.admitted,
            &self.served,
            &self.shed,
            &self.drift_shed,
            &self.peak_depth,
            &self.waits_ms,
            &self.served_work_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantSpec;
    use bao_common::rng::{split_seed, Rng, Xoshiro256};

    fn drain(sched: &mut Scheduler, cap: usize) -> Vec<Vec<Dispatch>> {
        let mut waves = Vec::new();
        let mut now = SimDuration::ZERO;
        loop {
            sched.release(now);
            if !sched.has_dispatchable(now) {
                match sched.next_ready(now) {
                    Some(t) if t > now => {
                        now = t;
                        continue;
                    }
                    _ => break,
                }
            }
            let wave = sched.form_wave(now, cap);
            assert!(!wave.is_empty(), "dispatchable scheduler formed an empty wave");
            for d in &wave {
                sched.note_served(d, now - d.arrival, SimDuration::from_ms(1.0));
            }
            now += SimDuration::from_ms(wave.len() as f64);
            waves.push(wave);
        }
        waves
    }

    fn closed_loop(n: usize, tenant_of: impl Fn(usize) -> TenantId) -> Vec<QueryArrival> {
        (0..n)
            .map(|i| QueryArrival { idx: i, tenant: tenant_of(i), arrival: SimDuration::ZERO })
            .collect()
    }

    #[test]
    fn single_tenant_drr_dispatches_in_exact_arrival_order() {
        for cap in [1usize, 3, 8] {
            let mut s = Scheduler::new(SchedConfig::single_tenant()).unwrap();
            s.submit(&closed_loop(17, |_| 0)).unwrap();
            let order: Vec<usize> =
                drain(&mut s, cap).into_iter().flatten().map(|d| d.idx).collect();
            assert_eq!(order, (0..17).collect::<Vec<_>>(), "cap {cap}");
        }
    }

    #[test]
    fn fifo_and_single_tenant_drr_agree() {
        for policy in [WavePolicy::Fifo, WavePolicy::Drr] {
            let mut s =
                Scheduler::new(SchedConfig::single_tenant().with_policy(policy)).unwrap();
            s.submit(&closed_loop(9, |_| 0)).unwrap();
            let order: Vec<usize> =
                drain(&mut s, 4).into_iter().flatten().map(|d| d.idx).collect();
            assert_eq!(order, (0..9).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn drr_serves_weight_proportional_shares() {
        let cfg = SchedConfig {
            tenants: vec![
                TenantSpec::new("light").with_weight(1),
                TenantSpec::new("heavy").with_weight(3),
            ],
            policy: WavePolicy::Drr,
            quantum: 1,
            shed_deadline: None,
        };
        let mut s = Scheduler::new(cfg).unwrap();
        // Both tenants have deep backlogs; the first 12 dispatches must
        // split 3:9 between light and heavy.
        s.submit(&closed_loop(40, |i| i % 2)).unwrap();
        s.release(SimDuration::ZERO);
        let wave = s.form_wave(SimDuration::ZERO, 12);
        let heavy = wave.iter().filter(|d| d.tenant == 1).count();
        assert_eq!(wave.len(), 12);
        assert_eq!(heavy, 9, "weight-3 tenant gets 3 of every 4 slots");
    }

    #[test]
    fn strict_priority_class_preempts_lower_classes() {
        let cfg = SchedConfig {
            tenants: vec![
                TenantSpec::new("bulk").with_priority(Priority::Background),
                TenantSpec::new("oltp").with_priority(Priority::Interactive),
            ],
            policy: WavePolicy::Drr,
            quantum: 1,
            shed_deadline: None,
        };
        let mut s = Scheduler::new(cfg).unwrap();
        s.submit(&closed_loop(10, |i| i % 2)).unwrap();
        s.release(SimDuration::ZERO);
        let wave = s.form_wave(SimDuration::ZERO, 5);
        // All five interactive queries dispatch before any background one.
        assert!(wave.iter().all(|d| d.tenant == 1), "{wave:?}");
    }

    #[test]
    fn token_bucket_limits_dispatch_rate_and_next_ready_advances() {
        let cfg = SchedConfig {
            tenants: vec![TenantSpec::new("limited").with_rate(2.0, 10.0)],
            policy: WavePolicy::Drr,
            quantum: 1,
            shed_deadline: None,
        };
        let mut s = Scheduler::new(cfg).unwrap();
        s.submit(&closed_loop(4, |_| 0)).unwrap();
        s.release(SimDuration::ZERO);
        // Burst capacity is 2: the first wave stops there even with cap 4.
        let w1 = s.form_wave(SimDuration::ZERO, 4);
        assert_eq!(w1.len(), 2);
        assert!(!s.has_dispatchable(SimDuration::ZERO));
        // next_ready lands when the bucket has refilled one token (0.1s).
        let t = s.next_ready(SimDuration::ZERO).expect("refill pending");
        assert!(t.as_secs() > 0.09 && t.as_secs() < 0.2, "{t:?}");
        assert!(s.has_dispatchable(t));
        assert_eq!(s.form_wave(t, 4).len(), 1);
    }

    #[test]
    fn depth_bound_sheds_overflow_and_deadline_sheds_stale() {
        let cfg = SchedConfig {
            tenants: vec![TenantSpec::new("bounded").with_queue_depth(2)],
            policy: WavePolicy::Drr,
            quantum: 1,
            shed_deadline: Some(SimDuration::from_ms(10.0)),
        };
        let mut s = Scheduler::new(cfg).unwrap();
        s.submit(&closed_loop(4, |_| 0)).unwrap();
        s.release(SimDuration::ZERO);
        // Queue bound 2: arrivals 2 and 3 released over depth are shed.
        let wave = s.form_wave(SimDuration::ZERO, 4);
        let shed: Vec<bool> = wave.iter().map(|d| d.shed).collect();
        assert_eq!(shed, vec![false, false, true, true]);
        // A fresh arrival dispatched long past the deadline is shed too.
        s.submit(&[QueryArrival { idx: 4, tenant: 0, arrival: SimDuration::ZERO }]).unwrap();
        let late = SimDuration::from_ms(50.0);
        s.release(late);
        let wave = s.form_wave(late, 1);
        assert!(wave[0].shed, "waited 50ms > 10ms deadline");
    }

    /// Satellite: starvation freedom. Under adversarial arrival
    /// permutations (3 seeds × heavy flood ahead of light queries),
    /// every tenant with nonzero weight is first served within a bounded
    /// number of waves. The bound for persistent-cursor DRR is
    /// `sum_t(quantum * weight_t + 1)` dispatches — at one dispatch per
    /// wave minimum, the same number of waves — plus one cursor lap.
    #[test]
    fn starvation_freedom_under_adversarial_arrival_permutations() {
        let weights = [8u32, 1, 4, 1, 2];
        let quantum = 2u32;
        let n_queries = 120usize;
        let bound_dispatches: usize = weights
            .iter()
            .map(|&w| (quantum as usize) * (w as usize) + 1)
            .sum::<usize>()
            + weights.len();
        for seed in [7u64, 19, 4242] {
            let mut rng = Xoshiro256::seed_from_u64(split_seed(seed, 5));
            // Adversarial mix: mostly heavy-tenant floods, with each
            // light tenant appearing at least once, then shuffled.
            let mut tenants: Vec<TenantId> = (0..n_queries)
                .map(|i| if i < weights.len() { i } else { 0 })
                .collect();
            rng.shuffle(&mut tenants);
            let cfg = SchedConfig {
                tenants: weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| TenantSpec::new(format!("t{i}")).with_weight(w))
                    .collect(),
                policy: WavePolicy::Drr,
                quantum,
                shed_deadline: None,
            };
            let mut s = Scheduler::new(cfg).unwrap();
            let arrivals: Vec<QueryArrival> = tenants
                .iter()
                .enumerate()
                .map(|(i, &t)| QueryArrival { idx: i, tenant: t, arrival: SimDuration::ZERO })
                .collect();
            s.submit(&arrivals).unwrap();
            let waves = drain(&mut s, 2);
            let mut first_wave = vec![None; weights.len()];
            for (w, wave) in waves.iter().enumerate() {
                for d in wave {
                    if first_wave[d.tenant].is_none() {
                        first_wave[d.tenant] = Some(w);
                    }
                }
            }
            for (t, fw) in first_wave.iter().enumerate() {
                let fw = fw.unwrap_or_else(|| panic!("seed {seed}: tenant {t} never served"));
                assert!(
                    fw <= bound_dispatches,
                    "seed {seed}: tenant {t} first served at wave {fw} > bound {bound_dispatches}"
                );
            }
        }
    }

    #[test]
    fn rejects_zero_weight_and_zero_quantum() {
        let cfg = SchedConfig {
            tenants: vec![TenantSpec::new("z").with_weight(0)],
            policy: WavePolicy::Drr,
            quantum: 1,
            shed_deadline: None,
        };
        assert!(Scheduler::new(cfg).is_err());
        let mut cfg = SchedConfig::single_tenant();
        cfg.quantum = 0;
        assert!(Scheduler::new(cfg).is_err());
    }

    #[test]
    fn report_counts_admitted_served_and_shed() {
        let cfg = SchedConfig {
            tenants: vec![
                TenantSpec::new("a").with_queue_depth(1),
                TenantSpec::new("b").with_weight(2),
            ],
            policy: WavePolicy::Drr,
            quantum: 1,
            shed_deadline: None,
        };
        let mut s = Scheduler::new(cfg).unwrap();
        s.submit(&closed_loop(8, |i| i % 2)).unwrap();
        let waves = drain(&mut s, 3);
        let n_waves = waves.len();
        let r = s.report(n_waves);
        assert_eq!(r.waves, n_waves);
        assert_eq!(r.total_admitted(), 8);
        assert_eq!(r.total_served(), 8);
        // Tenant a: 4 releases into a depth-1 queue at time zero → 3 shed.
        assert_eq!(r.tenants[0].shed, 3);
        assert_eq!(r.tenants[1].shed, 0);
        assert!(r.jain_fairness > 0.0 && r.jain_fairness <= 1.0);
    }
}
