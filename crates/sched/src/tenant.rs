//! Tenant registry: weights, priority classes, rate limits, and queue
//! bounds. A tenant is identified by its index into
//! [`SchedConfig::tenants`](crate::SchedConfig).

use bao_common::SimDuration;

/// Index into the tenant registry (`SchedConfig::tenants`).
pub type TenantId = usize;

/// Strict priority class. The wave former exhausts every eligible
/// query of a higher class before a lower class contributes anything;
/// DRR fairness (weights, deficits) applies *within* a class only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-sensitive foreground traffic.
    Interactive,
    /// Default class.
    Normal,
    /// Bulk / analytics traffic; runs only when nothing above is ready.
    Background,
}

impl Priority {
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Normal => "normal",
            Priority::Background => "background",
        }
    }
}

/// Token-bucket parameters. `capacity` bounds the burst a tenant can
/// dispatch at once; `per_sec` is the sustained refill rate, both in
/// units of queries.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    pub capacity: f64,
    pub per_sec: f64,
}

/// One tenant's admission contract.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub name: String,
    /// DRR weight: queries credited per round relative to peers in the
    /// same priority class. Must be ≥ 1 (zero-weight tenants would
    /// starve, defeating the bounded-service guarantee).
    pub weight: u32,
    pub priority: Priority,
    /// `None` = unlimited (no token bucket).
    pub rate: Option<RateLimit>,
    /// Bound on the tenant's queue depth; queries released while the
    /// queue is at or past this depth are *shed* — still executed, but
    /// degraded to arm 0 without TCNN scoring. `None` = unbounded.
    pub queue_depth: Option<usize>,
}

impl TenantSpec {
    /// An unconstrained tenant: weight 1, normal priority, no rate
    /// limit, unbounded queue.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: 1,
            priority: Priority::Normal,
            rate: None,
            queue_depth: None,
        }
    }

    pub fn with_weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }

    pub fn with_priority(mut self, priority: Priority) -> TenantSpec {
        self.priority = priority;
        self
    }

    pub fn with_rate(mut self, capacity: f64, per_sec: f64) -> TenantSpec {
        self.rate = Some(RateLimit { capacity, per_sec });
        self
    }

    pub fn with_queue_depth(mut self, depth: usize) -> TenantSpec {
        self.queue_depth = Some(depth);
        self
    }
}

/// Deterministic token bucket over sim-time. Tokens refill continuously
/// at `per_sec` up to `capacity`; each dispatch takes one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    per_sec: f64,
    tokens: f64,
    last_refill: SimDuration,
}

impl TokenBucket {
    /// A full bucket at sim-time zero.
    pub fn new(limit: RateLimit) -> TokenBucket {
        TokenBucket {
            capacity: limit.capacity.max(1.0),
            per_sec: limit.per_sec.max(0.0),
            tokens: limit.capacity.max(1.0),
            last_refill: SimDuration::ZERO,
        }
    }

    fn refill(&mut self, now: SimDuration) {
        if now > self.last_refill {
            let gained = (now - self.last_refill).as_secs() * self.per_sec;
            self.tokens = (self.tokens + gained).min(self.capacity);
            self.last_refill = now;
        }
    }

    /// Tokens available at `now`, without mutating the bucket.
    fn tokens_at(&self, now: SimDuration) -> f64 {
        let gained = (now - self.last_refill).max(SimDuration::ZERO).as_secs() * self.per_sec;
        (self.tokens + gained).min(self.capacity)
    }

    /// Whether a dispatch at `now` would be admitted.
    pub fn ready(&self, now: SimDuration) -> bool {
        self.tokens_at(now) >= 1.0
    }

    /// Take one token at `now`; returns false (and takes nothing) if the
    /// bucket holds less than one token.
    pub fn try_take(&mut self, now: SimDuration) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Earliest sim-time at or after `now` when one token is available.
    /// Returns `None` when the refill rate is zero and the bucket is dry
    /// (the tenant can never dispatch again). A small epsilon is added so
    /// that advancing the clock to the returned instant always makes
    /// [`TokenBucket::ready`] true despite float rounding.
    pub fn ready_at(&self, now: SimDuration) -> Option<SimDuration> {
        let have = self.tokens_at(now);
        if have >= 1.0 {
            return Some(now);
        }
        if self.per_sec <= 0.0 {
            return None;
        }
        let wait = SimDuration::from_secs((1.0 - have) / self.per_sec);
        Some(now + wait + SimDuration::from_ms(1e-6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_refills_and_caps_at_capacity() {
        let mut b = TokenBucket::new(RateLimit { capacity: 2.0, per_sec: 1.0 });
        // Starts full: two takes succeed, third fails.
        assert!(b.try_take(SimDuration::ZERO));
        assert!(b.try_take(SimDuration::ZERO));
        assert!(!b.try_take(SimDuration::ZERO));
        // After 1 simulated second, exactly one token is back.
        let t1 = SimDuration::from_secs(1.0);
        assert!(b.ready(t1));
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
        // Refill never exceeds capacity.
        let t100 = SimDuration::from_secs(100.0);
        assert!(b.try_take(t100));
        assert!(b.try_take(t100));
        assert!(!b.try_take(t100));
    }

    #[test]
    fn ready_at_advances_past_float_rounding() {
        let mut b = TokenBucket::new(RateLimit { capacity: 1.0, per_sec: 3.0 });
        assert!(b.try_take(SimDuration::ZERO));
        let now = SimDuration::from_ms(1.0);
        assert!(!b.ready(now));
        let at = b.ready_at(now).expect("refilling bucket");
        assert!(at > now);
        assert!(b.ready(at), "bucket must be ready at its own ready_at instant");
    }

    #[test]
    fn zero_rate_bucket_reports_never_ready() {
        let mut b = TokenBucket::new(RateLimit { capacity: 1.0, per_sec: 0.0 });
        assert!(b.try_take(SimDuration::ZERO));
        assert_eq!(b.ready_at(SimDuration::from_secs(5.0)), None);
    }
}
