//! SQL tokenizer.

use bao_common::{BaoError, Result};

/// Lexical tokens. Keywords are recognized case-insensitively and carried
/// as upper-cased `Keyword`s; everything else identifier-shaped is `Ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Comparison operators: `=`, `<`, `<=`, `>`, `>=`, `<>` (or `!=`).
    Op(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Semicolon,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "GROUP", "ORDER", "BY", "LIMIT", "AS", "COUNT", "SUM",
    "MIN", "MAX", "AVG", "ASC", "DESC", "BETWEEN", "EXPLAIN",
];

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(BaoError::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        // '' escapes a quote inside the literal
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Token::Str(s));
            }
            '=' => {
                out.push(Token::Op("=".into()));
                i += 1;
            }
            '<' | '>' | '!' => {
                let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
                    let norm = if two == "!=" { "<>".to_string() } else { two };
                    out.push(Token::Op(norm));
                    i += 2;
                } else if c == '!' {
                    return Err(BaoError::Parse("unexpected '!'".into()));
                } else {
                    out.push(Token::Op(c.to_string()));
                    i += 1;
                }
            }
            c if c.is_ascii_digit() || (c == '-' && starts_number(&chars, i)) => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if text.contains('.') {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| BaoError::Parse(format!("bad float literal {text}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| BaoError::Parse(format!("bad int literal {text}")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word));
                }
            }
            other => {
                return Err(BaoError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

/// Is the `-` at position `i` the start of a negative number literal
/// (rather than an operator we do not support)?
fn starts_number(chars: &[char], i: usize) -> bool {
    chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT * FROM t;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Star,
                Token::Keyword("FROM".into()),
                Token::Ident("t".into()),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select Count from T").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Keyword("COUNT".into()));
        assert_eq!(toks[3], Token::Ident("T".into()));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <= 5 AND b <> 3 AND c != 2 AND d >= -4").unwrap();
        let ops: Vec<&Token> = toks.iter().filter(|t| matches!(t, Token::Op(_))).collect();
        assert_eq!(
            ops,
            vec![
                &Token::Op("<=".into()),
                &Token::Op("<>".into()),
                &Token::Op("<>".into()),
                &Token::Op(">=".into()),
            ]
        );
        assert!(toks.contains(&Token::Int(-4)));
    }

    #[test]
    fn string_literals_with_escape() {
        let toks = tokenize("x = 'don''t'").unwrap();
        assert_eq!(toks[2], Token::Str("don't".into()));
        assert!(tokenize("x = 'oops").is_err());
    }

    #[test]
    fn numeric_literals() {
        let toks = tokenize("1 2.5 -3 -4.25").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(1), Token::Float(2.5), Token::Int(-3), Token::Float(-4.25)]
        );
        assert!(tokenize("1.2.3").is_err());
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("t.col").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("t".into()), Token::Dot, Token::Ident("col".into())]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
