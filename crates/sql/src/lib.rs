//! SQL frontend: a tokenizer and recursive-descent parser for the
//! SELECT–FROM–WHERE–GROUP BY–ORDER BY–LIMIT fragment the paper's
//! workloads use, producing [`bao_plan::Query`] ASTs.
//!
//! The examples drive the whole stack from SQL text through this crate;
//! the workload generators construct [`bao_plan::Query`] values directly.

pub mod lexer;
pub mod parser;

pub use lexer::{tokenize, Token};
pub use parser::{parse_query, parse_statement, Statement};
