//! Recursive-descent parser from tokens to [`bao_plan::Query`].

use crate::lexer::{tokenize, Token};
use bao_common::{BaoError, Result};
use bao_plan::{
    AggFunc, CmpOp, ColRef, JoinPred, Predicate, Query, SelectItem, TableRef,
};
use bao_storage::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Query),
    /// `EXPLAIN SELECT ...` — callers render the plan (and, with Bao in
    /// advisor mode, the Figure 6 augmentation) instead of executing.
    Explain(Query),
}

/// Parse one SQL SELECT statement.
pub fn parse_query(sql: &str) -> Result<Query> {
    match parse_statement(sql)? {
        Statement::Select(q) | Statement::Explain(q) => Ok(q),
    }
}

/// Parse a statement, distinguishing `EXPLAIN` from plain `SELECT`.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let explain = p.keyword_is("EXPLAIN");
    if explain {
        p.next();
    }
    let q = p.query()?;
    p.eat_if(&Token::Semicolon);
    if !p.at_end() {
        return Err(BaoError::Parse(format!("trailing tokens after query: {:?}", p.peek())));
    }
    Ok(if explain { Statement::Explain(q) } else { Statement::Select(q) })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// A column name as written: optionally qualified by a table alias.
#[derive(Debug, Clone)]
struct RawCol {
    qualifier: Option<String>,
    column: String,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(BaoError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(BaoError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let raw_select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let tables = self.table_list()?;

        let mut raw_conds = Vec::new();
        if self.keyword_is("WHERE") {
            self.next();
            loop {
                raw_conds.extend(self.condition()?);
                if !self.keyword_is("AND") {
                    break;
                }
                self.next();
            }
        }

        let mut raw_group = Vec::new();
        if self.keyword_is("GROUP") {
            self.next();
            self.expect_keyword("BY")?;
            raw_group = self.col_list()?;
        }

        let mut raw_order = Vec::new();
        if self.keyword_is("ORDER") {
            self.next();
            self.expect_keyword("BY")?;
            raw_order = self.col_list()?;
            // Direction is accepted and ignored (sort direction does not
            // change plan shape in this engine).
            while self.keyword_is("ASC") || self.keyword_is("DESC") {
                self.next();
            }
        }

        let mut limit = None;
        if self.keyword_is("LIMIT") {
            self.next();
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
                other => {
                    return Err(BaoError::Parse(format!("expected LIMIT count, found {other:?}")))
                }
            }
        }

        // Resolve raw column references against the FROM list.
        let resolver = Resolver { tables: &tables };
        let select = raw_select
            .into_iter()
            .map(|item| item.resolve(&resolver))
            .collect::<Result<Vec<_>>>()?;
        let mut predicates = Vec::new();
        let mut joins = Vec::new();
        for cond in raw_conds {
            match cond {
                RawCond::Filter { col, op, value } => {
                    predicates.push(Predicate::new(resolver.resolve(&col)?, op, value))
                }
                RawCond::Join { left, right } => joins.push(JoinPred::new(
                    resolver.resolve(&left)?,
                    resolver.resolve(&right)?,
                )),
            }
        }
        let group_by =
            raw_group.iter().map(|c| resolver.resolve(c)).collect::<Result<Vec<_>>>()?;
        let order_by =
            raw_order.iter().map(|c| resolver.resolve(c)).collect::<Result<Vec<_>>>()?;

        Ok(Query { tables, select, predicates, joins, group_by, order_by, limit })
    }

    fn select_list(&mut self) -> Result<Vec<RawSelect>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<RawSelect> {
        match self.peek().cloned() {
            Some(Token::Keyword(kw))
                if matches!(kw.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") =>
            {
                self.next();
                if self.next() != Some(Token::LParen) {
                    return Err(BaoError::Parse(format!("expected ( after {kw}")));
                }
                let item = if kw == "COUNT" && self.eat_if(&Token::Star) {
                    RawSelect::Agg(RawAgg::CountStar)
                } else {
                    let col = self.raw_col()?;
                    RawSelect::Agg(match kw.as_str() {
                        "COUNT" => RawAgg::Count(col),
                        "SUM" => RawAgg::Sum(col),
                        "MIN" => RawAgg::Min(col),
                        "MAX" => RawAgg::Max(col),
                        "AVG" => RawAgg::Avg(col),
                        _ => unreachable!(),
                    })
                };
                if self.next() != Some(Token::RParen) {
                    return Err(BaoError::Parse("expected ) closing aggregate".into()));
                }
                Ok(item)
            }
            Some(Token::Ident(_)) => Ok(RawSelect::Column(self.raw_col()?)),
            other => Err(BaoError::Parse(format!("bad select item: {other:?}"))),
        }
    }

    fn table_list(&mut self) -> Result<Vec<TableRef>> {
        let mut tables = Vec::new();
        loop {
            let name = self.ident()?;
            // optional [AS] alias
            let alias = if self.keyword_is("AS") {
                self.next();
                Some(self.ident()?)
            } else if matches!(self.peek(), Some(Token::Ident(_))) {
                Some(self.ident()?)
            } else {
                None
            };
            tables.push(match alias {
                Some(a) => TableRef::aliased(name, a),
                None => TableRef::new(name),
            });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(tables)
    }

    fn col_list(&mut self) -> Result<Vec<RawCol>> {
        let mut cols = vec![self.raw_col()?];
        while self.eat_if(&Token::Comma) {
            cols.push(self.raw_col()?);
        }
        Ok(cols)
    }

    fn raw_col(&mut self) -> Result<RawCol> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            let column = self.ident()?;
            Ok(RawCol { qualifier: Some(first), column })
        } else {
            Ok(RawCol { qualifier: None, column: first })
        }
    }

    /// One WHERE condition; `BETWEEN lo AND hi` desugars to two range
    /// predicates, hence the Vec.
    fn condition(&mut self) -> Result<Vec<RawCond>> {
        let left = self.raw_col()?;
        if self.keyword_is("BETWEEN") {
            self.next();
            let lo = self.literal()?;
            self.expect_keyword("AND")?;
            let hi = self.literal()?;
            return Ok(vec![
                RawCond::Filter { col: left.clone(), op: CmpOp::Ge, value: lo },
                RawCond::Filter { col: left, op: CmpOp::Le, value: hi },
            ]);
        }
        match self.next() {
            Some(Token::Op(op)) => {
                let op = parse_op(&op)?;
                match self.peek().cloned() {
                    Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                        let value = self.literal()?;
                        Ok(vec![RawCond::Filter { col: left, op, value }])
                    }
                    Some(Token::Ident(_)) => {
                        let right = self.raw_col()?;
                        if op != CmpOp::Eq {
                            return Err(BaoError::Parse(
                                "only equi-joins between columns are supported".into(),
                            ));
                        }
                        Ok(vec![RawCond::Join { left, right }])
                    }
                    other => Err(BaoError::Parse(format!("bad comparison operand: {other:?}"))),
                }
            }
            other => Err(BaoError::Parse(format!("expected comparison operator, found {other:?}"))),
        }
    }
}

impl Parser {
    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Float(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            other => Err(BaoError::Parse(format!("expected literal, found {other:?}"))),
        }
    }
}

fn parse_op(op: &str) -> Result<CmpOp> {
    Ok(match op {
        "=" => CmpOp::Eq,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        "<>" => CmpOp::Ne,
        other => return Err(BaoError::Parse(format!("unknown operator {other}"))),
    })
}

enum RawSelect {
    Column(RawCol),
    Agg(RawAgg),
}

enum RawAgg {
    CountStar,
    Count(RawCol),
    Sum(RawCol),
    Min(RawCol),
    Max(RawCol),
    Avg(RawCol),
}

enum RawCond {
    Filter { col: RawCol, op: CmpOp, value: Value },
    Join { left: RawCol, right: RawCol },
}

struct Resolver<'a> {
    tables: &'a [TableRef],
}

impl Resolver<'_> {
    fn resolve(&self, raw: &RawCol) -> Result<ColRef> {
        match &raw.qualifier {
            Some(q) => {
                let idx = self
                    .tables
                    .iter()
                    .position(|t| &t.alias == q)
                    .ok_or_else(|| BaoError::Parse(format!("unknown table alias {q}")))?;
                Ok(ColRef::new(idx, raw.column.clone()))
            }
            None => {
                if self.tables.len() == 1 {
                    Ok(ColRef::new(0, raw.column.clone()))
                } else {
                    Err(BaoError::Parse(format!(
                        "column {} must be qualified in a multi-table query",
                        raw.column
                    )))
                }
            }
        }
    }
}

impl RawSelect {
    fn resolve(self, r: &Resolver<'_>) -> Result<SelectItem> {
        Ok(match self {
            RawSelect::Column(c) => SelectItem::Column(r.resolve(&c)?),
            RawSelect::Agg(a) => SelectItem::Agg(match a {
                RawAgg::CountStar => AggFunc::CountStar,
                RawAgg::Count(c) => AggFunc::Count(r.resolve(&c)?),
                RawAgg::Sum(c) => AggFunc::Sum(r.resolve(&c)?),
                RawAgg::Min(c) => AggFunc::Min(r.resolve(&c)?),
                RawAgg::Max(c) => AggFunc::Max(r.resolve(&c)?),
                RawAgg::Avg(c) => AggFunc::Avg(r.resolve(&c)?),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_table_query() {
        let q = parse_query("SELECT COUNT(*) FROM title WHERE production_year > 2000;").unwrap();
        assert_eq!(q.tables, vec![TableRef::new("title")]);
        assert_eq!(q.select, vec![SelectItem::Agg(AggFunc::CountStar)]);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].op, CmpOp::Gt);
        assert_eq!(q.predicates[0].value, Value::Int(2000));
    }

    #[test]
    fn join_query_with_aliases() {
        let q = parse_query(
            "SELECT MIN(t.production_year) FROM title t, cast_info ci \
             WHERE t.id = ci.movie_id AND ci.role_id = 2",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].left, ColRef::new(0, "id"));
        assert_eq!(q.joins[0].right, ColRef::new(1, "movie_id"));
        assert_eq!(q.predicates[0].col, ColRef::new(1, "role_id"));
    }

    #[test]
    fn self_join_distinct_aliases() {
        let q = parse_query(
            "SELECT COUNT(*) FROM person a, person b WHERE a.id = b.mentor_id",
        )
        .unwrap();
        assert_eq!(q.joins[0].left.table, 0);
        assert_eq!(q.joins[0].right.table, 1);
    }

    #[test]
    fn group_order_limit() {
        let q = parse_query(
            "SELECT t.kind, COUNT(*) FROM title t GROUP BY t.kind ORDER BY t.kind DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.group_by, vec![ColRef::new(0, "kind")]);
        assert_eq!(q.order_by, vec![ColRef::new(0, "kind")]);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn string_and_float_literals() {
        let q = parse_query("SELECT id FROM t WHERE kind = 'movie' AND score >= 7.5").unwrap();
        assert_eq!(q.predicates[0].value, Value::Str("movie".into()));
        assert_eq!(q.predicates[1].value, Value::Float(7.5));
    }

    #[test]
    fn as_alias_supported() {
        let q = parse_query("SELECT x.id FROM widgets AS x").unwrap();
        assert_eq!(q.tables[0].alias, "x");
        assert_eq!(q.tables[0].table, "widgets");
    }

    #[test]
    fn aggregates_all_forms() {
        let q = parse_query(
            "SELECT COUNT(*), COUNT(t.id), SUM(t.a), MIN(t.b), MAX(t.c), AVG(t.d) FROM t",
        )
        .unwrap();
        assert_eq!(q.select.len(), 6);
        assert!(q.has_aggregates());
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT a.x FROM t a, u b WHERE x = 1").is_err(), "ambiguous column");
        assert!(parse_query("SELECT a.x FROM t a WHERE z.y = 1").is_err(), "unknown alias");
        assert!(parse_query("SELECT a.x FROM t a WHERE a.x < a.y").is_err(), "non-equi join");
        assert!(parse_query("SELECT a.x FROM t a LIMIT x").is_err());
        assert!(parse_query("SELECT a.x FROM t a; garbage").is_err());
    }

    #[test]
    fn star_only_in_count() {
        assert!(parse_query("SELECT * FROM t").is_err());
    }

    #[test]
    fn between_desugars_to_range() {
        let q = parse_query(
            "SELECT COUNT(*) FROM t WHERE year BETWEEN 1990 AND 2000 AND kind = 'tv'",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[0].op, CmpOp::Ge);
        assert_eq!(q.predicates[0].value, Value::Int(1990));
        assert_eq!(q.predicates[1].op, CmpOp::Le);
        assert_eq!(q.predicates[1].value, Value::Int(2000));
        assert_eq!(q.predicates[2].value, Value::Str("tv".into()));
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE x BETWEEN 1").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM t WHERE x BETWEEN 1 AND y").is_err());
    }

    #[test]
    fn explain_statements() {
        let s = parse_statement("EXPLAIN SELECT COUNT(*) FROM t WHERE x = 1").unwrap();
        assert!(matches!(s, Statement::Explain(_)));
        let s = parse_statement("SELECT COUNT(*) FROM t").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        // parse_query accepts both forms
        assert!(parse_query("EXPLAIN SELECT COUNT(*) FROM t").is_ok());
        assert!(parse_statement("EXPLAIN EXPLAIN SELECT COUNT(*) FROM t").is_err());
    }
}
