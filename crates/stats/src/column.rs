//! Per-column statistics: distinct counts, MCVs, histograms, and — for
//! keyed columns — exact frequency sketches used by the ComSys-grade
//! estimator's join selectivity.

use crate::histogram::EquiDepthHistogram;
use bao_plan::CmpOp;
use bao_storage::ColumnData;
use std::collections::HashMap;

/// Number of most-common values tracked, as in PostgreSQL's
/// `default_statistics_target`.
pub const N_MCVS: usize = 100;

/// Histogram resolution.
pub const N_BUCKETS: usize = 100;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub n: usize,
    pub n_distinct: f64,
    /// Most common values and their frequency *fractions*, keyed columns only.
    pub mcvs: Vec<(i64, f64)>,
    /// Histogram over the non-MCV values (floats: over all values).
    pub histogram: EquiDepthHistogram,
    /// Exact value frequencies for keyed (int / dictionary-text) columns.
    /// This powers the [`crate::SampleEstimator`]'s join selectivity; the
    /// PostgreSQL-like estimator deliberately ignores it.
    pub freq: Option<HashMap<i64, u32>>,
}

impl ColumnStats {
    /// Full-scan analyze of one column.
    pub fn analyze(col: &ColumnData) -> ColumnStats {
        match col {
            ColumnData::Float(vals) => {
                let mut distinct: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
                distinct.sort_unstable();
                distinct.dedup();
                ColumnStats {
                    n: vals.len(),
                    n_distinct: distinct.len() as f64,
                    mcvs: vec![],
                    histogram: EquiDepthHistogram::build(vals, N_BUCKETS),
                    freq: None,
                }
            }
            _ => {
                let keys: Vec<i64> = (0..col.len())
                    .map(|r| col.key_at(r).expect("keyed column"))
                    .collect();
                let mut freq: HashMap<i64, u32> = HashMap::new();
                for &k in &keys {
                    *freq.entry(k).or_insert(0) += 1;
                }
                let n = keys.len();
                let n_distinct = freq.len() as f64;
                // MCVs: the N_MCVS most frequent values, but only those that
                // occur more than once (PostgreSQL omits MCVs for unique
                // columns).
                let mut by_freq: Vec<(i64, u32)> =
                    freq.iter().map(|(&k, &c)| (k, c)).collect();
                by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let mcvs: Vec<(i64, f64)> = by_freq
                    .iter()
                    .take(N_MCVS)
                    .filter(|&&(_, c)| c > 1)
                    .map(|&(k, c)| (k, c as f64 / n.max(1) as f64))
                    .collect();
                let mcv_set: std::collections::HashSet<i64> =
                    mcvs.iter().map(|&(k, _)| k).collect();
                let non_mcv: Vec<f64> = keys
                    .iter()
                    .filter(|k| !mcv_set.contains(k))
                    .map(|&k| k as f64)
                    .collect();
                ColumnStats {
                    n,
                    n_distinct,
                    mcvs,
                    histogram: EquiDepthHistogram::build(&non_mcv, N_BUCKETS),
                    freq: Some(freq),
                }
            }
        }
    }

    /// Total frequency fraction captured by the MCV list.
    pub fn mcv_total_frac(&self) -> f64 {
        self.mcvs.iter().map(|&(_, f)| f).sum()
    }

    /// PostgreSQL-style selectivity of `col OP x` using MCVs + histogram.
    pub fn selectivity(&self, op: CmpOp, x: f64) -> f64 {
        if self.n == 0 {
            return match op {
                CmpOp::Eq => 0.005,
                _ => 1.0 / 3.0,
            };
        }
        let mcv_frac = self.mcv_total_frac();
        let rest_frac = (1.0 - mcv_frac).max(0.0);
        let n_rest_distinct = (self.n_distinct - self.mcvs.len() as f64).max(1.0);
        match op {
            CmpOp::Eq => {
                if let Some(&(_, f)) = self
                    .mcvs
                    .iter()
                    .find(|&&(k, _)| (k as f64 - x).abs() < f64::EPSILON)
                {
                    f
                } else {
                    (rest_frac / n_rest_distinct).min(1.0)
                }
            }
            CmpOp::Ne => (1.0 - self.selectivity(CmpOp::Eq, x)).max(0.0),
            _ => {
                // MCV contribution counted exactly, histogram part scaled by
                // the non-MCV fraction.
                let mcv_part: f64 = self
                    .mcvs
                    .iter()
                    .filter(|&&(k, _)| {
                        let ord = (k as f64)
                            .partial_cmp(&x)
                            .expect("finite stats values");
                        op.matches(ord)
                    })
                    .map(|&(_, f)| f)
                    .sum();
                let hist_eq = 1.0 / n_rest_distinct;
                let hist_part = self.histogram.selectivity(op, x, 1.0 / hist_eq);
                (mcv_part + hist_part * rest_frac).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bao_storage::{DataType, Value};

    fn int_col(vals: &[i64]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Int);
        for &v in vals {
            c.push(Value::Int(v)).unwrap();
        }
        c
    }

    #[test]
    fn distinct_and_freq() {
        let s = ColumnStats::analyze(&int_col(&[1, 1, 2, 3, 3, 3]));
        assert_eq!(s.n, 6);
        assert_eq!(s.n_distinct, 3.0);
        let f = s.freq.as_ref().unwrap();
        assert_eq!(f[&3], 3);
        assert_eq!(f[&2], 1);
    }

    #[test]
    fn mcvs_capture_skew() {
        // 900 copies of 7, plus 100 unique values.
        let mut vals = vec![7i64; 900];
        vals.extend(100..200);
        let s = ColumnStats::analyze(&int_col(&vals));
        assert_eq!(s.mcvs[0].0, 7);
        assert!((s.mcvs[0].1 - 0.9).abs() < 1e-9);
        // Equality on the heavy hitter is accurate.
        assert!((s.selectivity(CmpOp::Eq, 7.0) - 0.9).abs() < 1e-9);
        // Equality on a rare value is small.
        assert!(s.selectivity(CmpOp::Eq, 150.0) < 0.01);
    }

    #[test]
    fn unique_column_has_no_mcvs() {
        let vals: Vec<i64> = (0..500).collect();
        let s = ColumnStats::analyze(&int_col(&vals));
        assert!(s.mcvs.is_empty());
        assert!((s.selectivity(CmpOp::Eq, 10.0) - 1.0 / 500.0).abs() < 1e-6);
    }

    #[test]
    fn range_selectivity_reasonable() {
        let vals: Vec<i64> = (0..1000).collect();
        let s = ColumnStats::analyze(&int_col(&vals));
        let sel = s.selectivity(CmpOp::Lt, 250.0);
        assert!((sel - 0.25).abs() < 0.03, "sel={sel}");
        let sel = s.selectivity(CmpOp::Ge, 900.0);
        assert!((sel - 0.10).abs() < 0.03, "sel={sel}");
    }

    #[test]
    fn range_with_mcv_contribution() {
        let mut vals = vec![0i64; 500];
        vals.extend(1..=500);
        let s = ColumnStats::analyze(&int_col(&vals));
        // half the column is the MCV value 0, all of it < 1
        let sel = s.selectivity(CmpOp::Lt, 1.0);
        assert!(sel >= 0.5, "sel={sel}");
        let sel = s.selectivity(CmpOp::Gt, 250.0);
        assert!((sel - 0.25).abs() < 0.05, "sel={sel}");
    }

    #[test]
    fn float_column_stats() {
        let mut c = ColumnData::new(DataType::Float);
        for i in 0..100 {
            c.push(Value::Float(i as f64)).unwrap();
        }
        let s = ColumnStats::analyze(&c);
        assert!(s.freq.is_none());
        assert!(s.mcvs.is_empty());
        assert!((s.selectivity(CmpOp::Lt, 50.0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::analyze(&int_col(&[]));
        assert_eq!(s.n, 0);
        assert_eq!(s.selectivity(CmpOp::Eq, 1.0), 0.005);
    }
}
