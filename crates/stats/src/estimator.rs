//! Selectivity estimators and the statistics catalog.

use crate::tablestats::{analyze_table, TableStats};
use bao_common::split_seed;
use bao_plan::{CmpOp, Predicate};
use bao_common::Rng;
use bao_storage::{ColumnData, Database, Table};
use bao_common::sync::Mutex;
use std::collections::HashMap;

/// A filter predicate with its literal resolved to the numeric domain the
/// statistics are built over (dictionary codes for text columns). Literals
/// that do not occur in a text column's dictionary resolve to a sentinel
/// that matches nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPred {
    pub column: String,
    pub op: CmpOp,
    pub x: f64,
}

/// Sentinel for text literals absent from the dictionary.
const MISSING_KEY: f64 = i64::MIN as f64;

/// Resolve a logical predicate against the table it filters.
pub fn resolve_predicate(table: &Table, pred: &Predicate) -> ResolvedPred {
    let x = match &pred.value {
        bao_storage::Value::Int(v) => *v as f64,
        bao_storage::Value::Float(v) => *v,
        bao_storage::Value::Str(s) => table
            .column(&pred.col.column)
            .ok()
            .and_then(|c| c.code_for(s))
            .map(|code| code as f64)
            .unwrap_or(MISSING_KEY),
    };
    ResolvedPred { column: pred.col.column.clone(), op: pred.op, x }
}

/// A small correlated row sample of one table: parallel per-column vectors
/// of resolved numeric keys.
#[derive(Debug, Clone)]
pub struct SampleTable {
    pub n: usize,
    pub columns: HashMap<String, Vec<f64>>,
}

impl SampleTable {
    fn build(table: &Table, size: usize, seed: u64) -> SampleTable {
        let rows = table.row_count();
        let take = size.min(rows);
        let picked: Vec<usize> = if take == 0 {
            vec![]
        } else if take == rows {
            (0..rows).collect()
        } else {
            let mut rng = bao_common::rng_from_seed(seed);
            rng.sample_indices(rows, take)
        };
        let mut columns = HashMap::new();
        for def in &table.schema.columns {
            let col = table.column(&def.name).expect("schema column");
            let vals: Vec<f64> = picked
                .iter()
                .map(|&r| match col {
                    ColumnData::Float(v) => v[r],
                    keyed => keyed.key_at(r).expect("keyed") as f64,
                })
                .collect();
            columns.insert(def.name.clone(), vals);
        }
        SampleTable { n: take, columns }
    }

    /// Fraction of sampled rows satisfying every predicate, with add-half
    /// smoothing so empty matches never estimate exactly zero.
    pub fn conjunction_selectivity(&self, preds: &[ResolvedPred]) -> f64 {
        if self.n == 0 {
            return 0.5;
        }
        let mut matched = 0usize;
        'rows: for r in 0..self.n {
            for p in preds {
                let Some(vals) = self.columns.get(&p.column) else {
                    continue 'rows;
                };
                let ord = vals[r].partial_cmp(&p.x).expect("finite sample values");
                if !p.op.matches(ord) {
                    continue 'rows;
                }
            }
            matched += 1;
        }
        (matched as f64 + 0.5) / (self.n as f64 + 1.0)
    }
}

type JoinKey = (String, String, String, String);

/// Statistics for a whole database: per-table ANALYZE output plus row
/// samples for the sample-based estimator, with a memo of computed join
/// selectivities.
pub struct StatsCatalog {
    tables: HashMap<String, TableStats>,
    samples: HashMap<String, SampleTable>,
    join_cache: Mutex<HashMap<JoinKey, f64>>,
}

impl std::fmt::Debug for StatsCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsCatalog")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Default sample size per table for the sample-based estimator.
pub const DEFAULT_SAMPLE_SIZE: usize = 1_000;

impl StatsCatalog {
    /// ANALYZE every live table in the database.
    pub fn analyze(db: &Database, sample_size: usize, seed: u64) -> StatsCatalog {
        let mut tables = HashMap::new();
        let mut samples = HashMap::new();
        for (i, name) in db.table_names().into_iter().enumerate() {
            let st = db.by_name(name).expect("listed table");
            tables.insert(name.to_string(), analyze_table(&st.table));
            samples.insert(
                name.to_string(),
                SampleTable::build(&st.table, sample_size, split_seed(seed, i as u64)),
            );
        }
        StatsCatalog { tables, samples, join_cache: Mutex::new(HashMap::new()) }
    }

    pub fn stats(&self, table: &str) -> Option<&TableStats> {
        self.tables.get(table)
    }

    pub fn sample(&self, table: &str) -> Option<&SampleTable> {
        self.samples.get(table)
    }

    /// Row count of a table per the statistics (0 for unknown tables).
    pub fn row_count(&self, table: &str) -> f64 {
        self.tables.get(table).map(|t| t.rows as f64).unwrap_or(0.0)
    }
}

/// A cardinality estimator: base-table conjunctive selectivity plus
/// equi-join selectivity between two base-table columns.
pub trait Estimator: Send + Sync {
    fn name(&self) -> &'static str;

    /// Selectivity of a predicate conjunction on one table.
    fn scan_selectivity(&self, cat: &StatsCatalog, table: &str, preds: &[ResolvedPred]) -> f64;

    /// Selectivity of `l_table.l_col = r_table.r_col` relative to the
    /// cross product of the two base tables.
    fn join_selectivity(
        &self,
        cat: &StatsCatalog,
        l_table: &str,
        l_col: &str,
        r_table: &str,
        r_col: &str,
    ) -> f64;
}

/// PostgreSQL-style estimation: per-column histogram/MCV selectivities
/// multiplied under attribute independence; join selectivity `1/max(nd)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PostgresEstimator;

impl Estimator for PostgresEstimator {
    fn name(&self) -> &'static str {
        "postgres"
    }

    fn scan_selectivity(&self, cat: &StatsCatalog, table: &str, preds: &[ResolvedPred]) -> f64 {
        let Some(stats) = cat.stats(table) else { return 1.0 };
        preds
            .iter()
            .map(|p| {
                stats
                    .column(&p.column)
                    .map(|c| c.selectivity(p.op, p.x))
                    .unwrap_or(1.0 / 3.0)
            })
            .product::<f64>()
            .clamp(1e-12, 1.0)
    }

    fn join_selectivity(
        &self,
        cat: &StatsCatalog,
        l_table: &str,
        l_col: &str,
        r_table: &str,
        r_col: &str,
    ) -> f64 {
        let nd_l = cat.stats(l_table).map(|s| s.n_distinct(l_col)).unwrap_or(1.0);
        let nd_r = cat.stats(r_table).map(|s| s.n_distinct(r_col)).unwrap_or(1.0);
        (1.0 / nd_l.max(nd_r).max(1.0)).clamp(1e-12, 1.0)
    }
}

/// "ComSys"-grade estimation: conjunctions evaluated on a correlated row
/// sample (capturing cross-column correlation), joins from exact key
/// frequency sketches (capturing skew). Far lower q-error, which makes the
/// traditional optimizer a much stronger baseline — matching the paper's
/// observation that Bao's improvement over the commercial system is ≈20%
/// instead of ≈50%.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleEstimator;

impl Estimator for SampleEstimator {
    fn name(&self) -> &'static str {
        "sample"
    }

    fn scan_selectivity(&self, cat: &StatsCatalog, table: &str, preds: &[ResolvedPred]) -> f64 {
        if preds.is_empty() {
            return 1.0;
        }
        match cat.sample(table) {
            Some(s) => s.conjunction_selectivity(preds).clamp(1e-12, 1.0),
            None => PostgresEstimator.scan_selectivity(cat, table, preds),
        }
    }

    fn join_selectivity(
        &self,
        cat: &StatsCatalog,
        l_table: &str,
        l_col: &str,
        r_table: &str,
        r_col: &str,
    ) -> f64 {
        let key: JoinKey =
            (l_table.to_string(), l_col.to_string(), r_table.to_string(), r_col.to_string());
        // Probe in a statement-scoped guard: an `if let` on the locked map
        // would keep the cache locked across the hit path, and the lock
        // must never be held across estimation (which may recurse into
        // other estimators sharing this catalog).
        let cached = cat.join_cache.lock().expect("join cache").get(&key).copied();
        if let Some(v) = cached {
            return v;
        }
        let fallback = PostgresEstimator.join_selectivity(cat, l_table, l_col, r_table, r_col);
        let sel = (|| {
            let lf = cat.stats(l_table)?.column(l_col)?.freq.as_ref()?;
            let rf = cat.stats(r_table)?.column(r_col)?.freq.as_ref()?;
            let (small, big) = if lf.len() <= rf.len() { (lf, rf) } else { (rf, lf) };
            let matches: f64 = small
                .iter()
                .filter_map(|(k, &c1)| big.get(k).map(|&c2| c1 as f64 * c2 as f64))
                .sum();
            let n_l = cat.row_count(l_table).max(1.0);
            let n_r = cat.row_count(r_table).max(1.0);
            Some((matches / (n_l * n_r)).clamp(1e-12, 1.0))
        })()
        .unwrap_or(fallback);
        cat.join_cache.lock().expect("join cache").insert(key, sel);
        sel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bao_plan::ColRef;
    use bao_storage::{ColumnDef, DataType, Schema, Value};

    /// Two correlated columns: kind == 1 implies year >= 2000.
    fn correlated_db() -> Database {
        let mut t = Table::new(
            "title",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("kind", DataType::Int),
                ColumnDef::new("year", DataType::Int),
            ]),
        );
        for i in 0..1000i64 {
            let kind = if i % 2 == 0 { 1 } else { 2 };
            let year = if kind == 1 { 2000 + (i % 20) } else { 1950 + (i % 50) };
            t.insert(vec![Value::Int(i), Value::Int(kind), Value::Int(year)]).unwrap();
        }
        let mut db = Database::new();
        db.create_table(t).unwrap();
        db
    }

    fn pred(col: &str, op: CmpOp, x: f64) -> ResolvedPred {
        ResolvedPred { column: col.into(), op, x }
    }

    #[test]
    fn independence_underestimates_correlation() {
        let db = correlated_db();
        let cat = StatsCatalog::analyze(&db, 1_000, 1);
        let preds = vec![pred("kind", CmpOp::Eq, 1.0), pred("year", CmpOp::Ge, 2000.0)];
        // truth: all kind==1 rows have year >= 2000 -> selectivity 0.5
        let pg = PostgresEstimator.scan_selectivity(&cat, "title", &preds);
        let smp = SampleEstimator.scan_selectivity(&cat, "title", &preds);
        assert!(pg < 0.35, "independence should underestimate, got {pg}");
        assert!((smp - 0.5).abs() < 0.05, "sample should be accurate, got {smp}");
    }

    #[test]
    fn join_selectivity_skew() {
        // fact.fk is heavily skewed toward parent 0.
        let mut parent = Table::new("p", Schema::new(vec![ColumnDef::new("id", DataType::Int)]));
        for i in 0..100i64 {
            parent.insert(vec![Value::Int(i)]).unwrap();
        }
        let mut fact = Table::new("f", Schema::new(vec![ColumnDef::new("fk", DataType::Int)]));
        for i in 0..1000i64 {
            let fk = if i < 900 { 0 } else { i % 100 };
            fact.insert(vec![Value::Int(fk)]).unwrap();
        }
        let mut db = Database::new();
        db.create_table(parent).unwrap();
        db.create_table(fact).unwrap();
        let cat = StatsCatalog::analyze(&db, 1_000, 2);
        // Every fact row matches exactly one parent: truth = 1000 rows out
        // of 100k pairs = 0.01, and uniformity agrees (1/max(100,91)=0.01);
        // both estimators land close here.
        let pg = PostgresEstimator.join_selectivity(&cat, "p", "id", "f", "fk");
        let smp = SampleEstimator.join_selectivity(&cat, "p", "id", "f", "fk");
        assert!((smp - 0.01).abs() < 0.001, "sample join sel {smp}");
        assert!(pg > 0.0 && pg <= 0.02);
    }

    #[test]
    fn sample_join_beats_uniformity_on_key_skew() {
        // Join fact-to-fact on fk: massive self-join blowup that uniformity
        // (1/max(nd)) wildly underestimates.
        let mut fact = Table::new("f", Schema::new(vec![ColumnDef::new("fk", DataType::Int)]));
        for i in 0..1000i64 {
            let fk = if i < 900 { 0 } else { i % 100 };
            fact.insert(vec![Value::Int(fk)]).unwrap();
        }
        let mut db = Database::new();
        db.create_table(fact).unwrap();
        let cat = StatsCatalog::analyze(&db, 1_000, 3);
        let truth = (900.0 * 900.0 + 9.0 * 100.0) / 1e6; // ~0.811
        let pg = PostgresEstimator.join_selectivity(&cat, "f", "fk", "f", "fk");
        let smp = SampleEstimator.join_selectivity(&cat, "f", "fk", "f", "fk");
        assert!((smp - truth).abs() / truth < 0.05, "sample {smp} vs truth {truth}");
        assert!(pg < truth / 10.0, "uniformity should underestimate: {pg} vs {truth}");
    }

    #[test]
    fn join_cache_memoizes() {
        let db = correlated_db();
        let cat = StatsCatalog::analyze(&db, 100, 4);
        let a = SampleEstimator.join_selectivity(&cat, "title", "id", "title", "id");
        let b = SampleEstimator.join_selectivity(&cat, "title", "id", "title", "id");
        assert_eq!(a, b);
        assert_eq!(cat.join_cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn resolve_text_predicate() {
        let mut t = Table::new(
            "s",
            Schema::new(vec![ColumnDef::new("kind", DataType::Text)]),
        );
        t.insert(vec![Value::Str("movie".into())]).unwrap();
        let p = Predicate::new(ColRef::new(0, "kind"), CmpOp::Eq, Value::Str("movie".into()));
        let r = resolve_predicate(&t, &p);
        assert_eq!(r.x, 0.0);
        let p = Predicate::new(ColRef::new(0, "kind"), CmpOp::Eq, Value::Str("nope".into()));
        let r = resolve_predicate(&t, &p);
        assert_eq!(r.x, MISSING_KEY);
    }

    #[test]
    fn unknown_table_defaults() {
        let db = Database::new();
        let cat = StatsCatalog::analyze(&db, 10, 5);
        assert_eq!(PostgresEstimator.scan_selectivity(&cat, "ghost", &[]), 1.0);
        assert_eq!(cat.row_count("ghost"), 0.0);
        let sel = SampleEstimator.scan_selectivity(&cat, "ghost", &[pred("x", CmpOp::Eq, 1.0)]);
        assert!(sel > 0.0);
    }

    #[test]
    fn sample_table_deterministic() {
        let db = correlated_db();
        let a = StatsCatalog::analyze(&db, 50, 9);
        let b = StatsCatalog::analyze(&db, 50, 9);
        assert_eq!(a.sample("title").unwrap().columns["year"], b.sample("title").unwrap().columns["year"]);
    }
}
