//! Equi-depth histograms over numeric column values.

use bao_plan::CmpOp;

/// An equi-depth histogram: `bounds` has `buckets + 1` entries and every
/// bucket holds the same number of underlying values. Mirrors PostgreSQL's
/// `histogram_bounds` statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    bounds: Vec<f64>,
    /// Number of values the histogram was built over.
    n: usize,
}

impl EquiDepthHistogram {
    /// Build from unsorted values with at most `max_buckets` buckets.
    /// Returns an empty histogram for no input.
    pub fn build(values: &[f64], max_buckets: usize) -> Self {
        if values.is_empty() || max_buckets == 0 {
            return EquiDepthHistogram { bounds: vec![], n: 0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in column data"));
        let buckets = max_buckets.min(sorted.len()).max(1);
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            let rank = (i * (sorted.len() - 1)) / buckets;
            bounds.push(sorted[rank]);
        }
        EquiDepthHistogram { bounds, n: values.len() }
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn buckets(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    pub fn min(&self) -> Option<f64> {
        self.bounds.first().copied()
    }

    pub fn max(&self) -> Option<f64> {
        self.bounds.last().copied()
    }

    /// Estimated fraction of values `< x` (strictly below), by linear
    /// interpolation within the containing bucket.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let b = self.buckets();
        if b == 0 {
            return 0.0;
        }
        if x <= self.bounds[0] {
            return 0.0;
        }
        if x > self.bounds[b] {
            return 1.0;
        }
        // Find the bucket containing x.
        let mut i = match self.bounds.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(idx) => idx,
            Err(idx) => idx.saturating_sub(1),
        };
        i = i.min(b - 1);
        let (lo, hi) = (self.bounds[i], self.bounds[i + 1]);
        let within = if hi > lo { ((x - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.0 };
        (i as f64 + within) / b as f64
    }

    /// Selectivity of `col OP x` against this histogram, given the
    /// column's distinct count (used for equality width).
    pub fn selectivity(&self, op: CmpOp, x: f64, n_distinct: f64) -> f64 {
        if self.is_empty() {
            return match op {
                CmpOp::Eq => 0.005,
                CmpOp::Ne => 0.995,
                _ => 1.0 / 3.0,
            };
        }
        let eq = 1.0 / n_distinct.max(1.0);
        let below = self.fraction_below(x);
        match op {
            CmpOp::Eq => eq,
            CmpOp::Ne => (1.0 - eq).max(0.0),
            CmpOp::Lt => below,
            CmpOp::Le => (below + eq).min(1.0),
            CmpOp::Gt => (1.0 - below - eq).max(0.0),
            CmpOp::Ge => (1.0 - below).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = EquiDepthHistogram::build(&[], 10);
        assert!(h.is_empty());
        assert_eq!(h.fraction_below(5.0), 0.0);
        assert!((h.selectivity(CmpOp::Lt, 5.0, 10.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_fractions() {
        let h = EquiDepthHistogram::build(&uniform(1000), 100);
        assert!((h.fraction_below(500.0) - 0.5).abs() < 0.02);
        assert!((h.fraction_below(250.0) - 0.25).abs() < 0.02);
        assert_eq!(h.fraction_below(-1.0), 0.0);
        assert_eq!(h.fraction_below(2000.0), 1.0);
    }

    #[test]
    fn skewed_data_equidepth() {
        // 90% zeros, 10% spread: the bucket boundaries crowd near zero.
        let mut vals = vec![0.0; 900];
        vals.extend((0..100).map(|i| (i * 10) as f64));
        let h = EquiDepthHistogram::build(&vals, 10);
        assert!(h.fraction_below(1.0) >= 0.8);
    }

    #[test]
    fn range_selectivities_sum_to_one() {
        let h = EquiDepthHistogram::build(&uniform(100), 10);
        let nd = 100.0;
        for x in [3.0, 50.0, 97.0] {
            let lt = h.selectivity(CmpOp::Lt, x, nd);
            let eq = h.selectivity(CmpOp::Eq, x, nd);
            let gt = h.selectivity(CmpOp::Gt, x, nd);
            assert!((lt + eq + gt - 1.0).abs() < 1e-9, "x={x}");
            assert!(
                (h.selectivity(CmpOp::Le, x, nd) - (lt + eq)).abs() < 1e-9
            );
            assert!(
                (h.selectivity(CmpOp::Ge, x, nd) - (gt + eq)).abs() < 1e-9
            );
            assert!(
                (h.selectivity(CmpOp::Ne, x, nd) - (1.0 - eq)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn single_value_column() {
        let h = EquiDepthHistogram::build(&[7.0; 50], 10);
        assert_eq!(h.fraction_below(7.0), 0.0);
        assert_eq!(h.fraction_below(8.0), 1.0);
        assert!((h.selectivity(CmpOp::Eq, 7.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let h = EquiDepthHistogram::build(&[3.0, 1.0, 2.0], 4);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
        assert!(h.buckets() >= 1);
    }
}
