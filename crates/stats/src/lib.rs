//! Statistics and cardinality estimation substrate.
//!
//! This crate is the "ANALYZE" half of the PostgreSQL-like optimizer:
//! equi-depth histograms, most-common-value lists, and distinct counts per
//! column, plus two selectivity estimators:
//!
//! * [`PostgresEstimator`] — per-column histogram/MCV estimates combined
//!   under the *attribute independence* assumption, and `1/max(nd)` join
//!   selectivity. On correlated, skewed data this misestimates exactly the
//!   way PostgreSQL does on the Join Order Benchmark, which is the failure
//!   mode Bao's hint sets correct.
//! * [`SampleEstimator`] — a "ComSys"-grade estimator: evaluates predicate
//!   conjunctions on a correlated row sample and computes join
//!   selectivities from exact key-frequency sketches, yielding far lower
//!   q-error and therefore a much stronger traditional optimizer baseline.

pub mod column;
pub mod estimator;
pub mod histogram;
pub mod tablestats;

pub use column::ColumnStats;
pub use estimator::{
    resolve_predicate, Estimator, PostgresEstimator, ResolvedPred, SampleEstimator, SampleTable,
    StatsCatalog,
};
pub use histogram::EquiDepthHistogram;
pub use tablestats::{analyze_table, TableStats};
