//! Table-level statistics: a row count plus per-column [`ColumnStats`].

use crate::column::ColumnStats;
use bao_storage::Table;
use std::collections::HashMap;

/// ANALYZE output for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: usize,
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Distinct count for a column, defaulting to the row count for
    /// unknown columns (the safe assumption for key columns).
    pub fn n_distinct(&self, name: &str) -> f64 {
        self.column(name)
            .map(|c| c.n_distinct.max(1.0))
            .unwrap_or(self.rows.max(1) as f64)
    }
}

/// Full-scan ANALYZE of a table. The paper rebuilds statistics "each time a
/// new dataset is loaded"; workloads call this after every data load or
/// schema change.
pub fn analyze_table(table: &Table) -> TableStats {
    let columns = table
        .schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, def)| (def.name.clone(), ColumnStats::analyze(table.column_by_index(i))))
        .collect();
    TableStats { rows: table.row_count(), columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bao_storage::{ColumnDef, DataType, Schema, Value};

    fn make_table() -> Table {
        let mut t = Table::new(
            "movies",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("kind", DataType::Text),
            ]),
        );
        for i in 0..100 {
            let kind = if i % 10 == 0 { "tv" } else { "movie" };
            t.insert(vec![Value::Int(i), Value::Str(kind.into())]).unwrap();
        }
        t
    }

    #[test]
    fn analyze_covers_all_columns() {
        let s = analyze_table(&make_table());
        assert_eq!(s.rows, 100);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.n_distinct("id"), 100.0);
        assert_eq!(s.n_distinct("kind"), 2.0);
    }

    #[test]
    fn unknown_column_defaults_to_rowcount() {
        let s = analyze_table(&make_table());
        assert_eq!(s.n_distinct("nope"), 100.0);
        assert!(s.column("nope").is_none());
    }

    #[test]
    fn text_column_freq_over_codes() {
        let t = make_table();
        let s = analyze_table(&t);
        let movie_code = t.column("kind").unwrap().code_for("movie").unwrap() as i64;
        let f = s.column("kind").unwrap().freq.as_ref().unwrap();
        assert_eq!(f[&movie_code], 90);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("e", Schema::new(vec![ColumnDef::new("x", DataType::Int)]));
        let s = analyze_table(&t);
        assert_eq!(s.rows, 0);
        assert_eq!(s.n_distinct("x"), 1.0);
    }
}
