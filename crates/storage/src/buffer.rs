//! LRU buffer pool simulator.
//!
//! Every page touch in the executor flows through this pool; misses are the
//! "physical I/O" metric of Figure 16b, and per-object residency fractions
//! are the optional cache features of Bao's plan vectorization (§3.1.1 of
//! the paper: "we augment each scan node with the percentage of the
//! targeted file that is cached").

use std::collections::{BTreeMap, HashMap};

/// Identifies a page: the owning object (table heap or index) and the page
/// number within it.
///
/// The `shard` field is an accounting annotation, not part of the page's
/// identity: sharded execution tags each touch with the shard that issued
/// it so the pool can report per-shard hit/miss splits, but a page cached
/// by one shard must hit when any other shard (or an unsharded caller)
/// touches it. Equality, hashing, and ordering therefore cover only
/// `(object, page)`.
#[derive(Debug, Clone, Copy)]
pub struct PageKey {
    pub object: u32,
    pub page: u32,
    pub shard: u32,
}

impl PartialEq for PageKey {
    fn eq(&self, other: &Self) -> bool {
        self.object == other.object && self.page == other.page
    }
}

impl Eq for PageKey {}

impl std::hash::Hash for PageKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.object.hash(state);
        self.page.hash(state);
    }
}

impl PartialOrd for PageKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PageKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.object, self.page).cmp(&(other.object, other.page))
    }
}

impl PageKey {
    pub fn new(object: u32, page: u32) -> Self {
        PageKey { object, page, shard: 0 }
    }

    /// The same page, annotated with the shard that is touching it.
    pub fn with_shard(self, shard: u32) -> Self {
        PageKey { shard, ..self }
    }
}

/// How a page is being read. Large sequential scans bypass cache insertion
/// (PostgreSQL's ring-buffer behaviour) so one big table scan does not
/// evict the whole working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Random or small-scan access: cached on read.
    Cached,
    /// Bulk sequential access: hit/miss is observed but the page is not
    /// promoted into the pool.
    BulkRead,
}

/// Cumulative hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
}

impl PoolStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A strict-LRU page cache with per-object residency accounting.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    /// page -> LRU stamp of its most recent access.
    resident: HashMap<PageKey, u64>,
    /// stamp -> page, for O(log n) eviction of the least recent stamp.
    order: BTreeMap<u64, PageKey>,
    /// object -> number of its pages currently resident.
    per_object: HashMap<u32, u32>,
    clock: u64,
    stats: PoolStats,
    /// shard annotation -> hit/miss counters for touches tagged with it.
    /// Unsharded touches land on shard 0. BTreeMap so reporting iterates
    /// in shard order.
    shard_stats: BTreeMap<u32, PoolStats>,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages. Zero capacity means every
    /// access misses (a permanently cold cache).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            resident: HashMap::new(),
            order: BTreeMap::new(),
            per_object: HashMap::new(),
            clock: 0,
            stats: PoolStats::default(),
            shard_stats: BTreeMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.resident.len()
    }

    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Per-shard hit/miss counters, keyed by the shard annotation on the
    /// touching `PageKey`. Summing every entry reproduces `stats()`
    /// exactly; an unsharded workload accumulates everything on shard 0.
    pub fn shard_stats(&self) -> &BTreeMap<u32, PoolStats> {
        &self.shard_stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
        self.shard_stats.clear();
    }

    /// Touch a page; returns `true` on a cache hit.
    pub fn access(&mut self, key: PageKey, kind: AccessKind) -> bool {
        self.clock += 1;
        let hit = if let Some(stamp) = self.resident.get_mut(&key) {
            // Refresh recency.
            self.order.remove(&*stamp);
            *stamp = self.clock;
            self.order.insert(self.clock, key);
            true
        } else {
            false
        };
        let per_shard = self.shard_stats.entry(key.shard).or_default();
        if hit {
            self.stats.hits += 1;
            per_shard.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        per_shard.misses += 1;
        if kind == AccessKind::Cached && self.capacity > 0 {
            self.insert(key);
        }
        false
    }

    /// Is the page resident, without touching recency or stats? Used by the
    /// optimizer's cache-aware cost adjustments.
    pub fn contains(&self, key: PageKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Fraction of an object's `n_pages` pages currently resident.
    pub fn cached_fraction(&self, object: u32, n_pages: u32) -> f64 {
        if n_pages == 0 {
            return 0.0;
        }
        let resident = self.per_object.get(&object).copied().unwrap_or(0);
        (resident as f64 / n_pages as f64).min(1.0)
    }

    /// Drop every page (a cold restart).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
        self.per_object.clear();
    }

    /// Load `pages` pages of `object` as if they had just been read
    /// (warming a cache before an experiment).
    pub fn prewarm(&mut self, object: u32, pages: u32) {
        for p in 0..pages {
            self.clock += 1;
            let key = PageKey::new(object, p);
            if let Some(stamp) = self.resident.get_mut(&key) {
                self.order.remove(&*stamp);
                *stamp = self.clock;
                self.order.insert(self.clock, key);
            } else if self.capacity > 0 {
                self.insert(key);
            }
        }
    }

    fn insert(&mut self, key: PageKey) {
        while self.resident.len() >= self.capacity {
            let (&oldest, &victim) = self.order.iter().next().expect("pool non-empty");
            self.order.remove(&oldest);
            self.resident.remove(&victim);
            let cnt = self.per_object.get_mut(&victim.object).expect("object tracked");
            *cnt -= 1;
            if *cnt == 0 {
                self.per_object.remove(&victim.object);
            }
        }
        self.resident.insert(key, self.clock);
        self.order.insert(self.clock, key);
        *self.per_object.entry(key.object).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_caching() {
        let mut p = BufferPool::new(4);
        let k = PageKey::new(1, 0);
        assert!(!p.access(k, AccessKind::Cached));
        assert!(p.access(k, AccessKind::Cached));
        assert_eq!(p.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = BufferPool::new(2);
        let a = PageKey::new(1, 0);
        let b = PageKey::new(1, 1);
        let c = PageKey::new(1, 2);
        p.access(a, AccessKind::Cached);
        p.access(b, AccessKind::Cached);
        p.access(a, AccessKind::Cached); // refresh a; b is now LRU
        p.access(c, AccessKind::Cached); // evicts b
        assert!(p.contains(a));
        assert!(!p.contains(b));
        assert!(p.contains(c));
    }

    #[test]
    fn bulk_reads_do_not_pollute() {
        let mut p = BufferPool::new(2);
        let a = PageKey::new(1, 0);
        p.access(a, AccessKind::Cached);
        for pg in 0..10 {
            p.access(PageKey::new(2, pg), AccessKind::BulkRead);
        }
        assert!(p.contains(a));
        assert_eq!(p.len(), 1);
        // but bulk reads still see hits on already-resident pages
        assert!(p.access(a, AccessKind::BulkRead));
    }

    #[test]
    fn cached_fraction_tracks_eviction() {
        let mut p = BufferPool::new(2);
        p.access(PageKey::new(7, 0), AccessKind::Cached);
        p.access(PageKey::new(7, 1), AccessKind::Cached);
        assert_eq!(p.cached_fraction(7, 4), 0.5);
        p.access(PageKey::new(8, 0), AccessKind::Cached); // evicts one page of 7
        assert_eq!(p.cached_fraction(7, 4), 0.25);
        assert_eq!(p.cached_fraction(8, 1), 1.0);
        assert_eq!(p.cached_fraction(9, 10), 0.0);
        assert_eq!(p.cached_fraction(8, 0), 0.0);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut p = BufferPool::new(0);
        let k = PageKey::new(1, 0);
        assert!(!p.access(k, AccessKind::Cached));
        assert!(!p.access(k, AccessKind::Cached));
        assert_eq!(p.stats().misses, 2);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn clear_and_prewarm() {
        let mut p = BufferPool::new(8);
        p.prewarm(3, 4);
        assert_eq!(p.cached_fraction(3, 4), 1.0);
        assert_eq!(p.stats().accesses(), 0, "prewarm does not count as traffic");
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.cached_fraction(3, 4), 0.0);
    }

    #[test]
    fn shard_annotation_is_not_identity() {
        let mut p = BufferPool::new(4);
        let k = PageKey::new(1, 0);
        assert!(!p.access(k.with_shard(2), AccessKind::Cached));
        // The same page touched from another shard (or unsharded) hits.
        assert!(p.access(k.with_shard(5), AccessKind::Cached));
        assert!(p.access(k, AccessKind::Cached));
        assert!(p.contains(k.with_shard(9)));
        assert_eq!(k, k.with_shard(3));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let digest = |key: PageKey| {
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(k), digest(k.with_shard(3)));
        assert_eq!(k.cmp(&k.with_shard(3)), std::cmp::Ordering::Equal);
    }

    /// Replay a fixed access trace annotated with `n_shards` round-robin
    /// shard tags; returns (per-shard stats, resident set in key order).
    fn sharded_trace(n_shards: u32) -> (Vec<PoolStats>, Vec<PageKey>, PoolStats) {
        let mut p = BufferPool::new(3);
        let trace: Vec<PageKey> = (0..40u32).map(|i| PageKey::new(1 + i % 2, i % 5)).collect();
        for (i, k) in trace.iter().enumerate() {
            p.access(k.with_shard(i as u32 % n_shards), AccessKind::Cached);
        }
        let per_shard: Vec<PoolStats> =
            (0..n_shards).map(|s| p.shard_stats().get(&s).copied().unwrap_or_default()).collect();
        let mut resident: Vec<PageKey> =
            trace.iter().copied().filter(|&k| p.contains(k)).collect();
        resident.sort();
        resident.dedup();
        (per_shard, resident, p.stats())
    }

    #[test]
    fn per_shard_stats_sum_to_unsharded_totals() {
        let (_, _, unsharded) = sharded_trace(1);
        for shards in [2, 4, 8] {
            let (per_shard, _, total) = sharded_trace(shards);
            let summed = per_shard.iter().fold(PoolStats::default(), |acc, s| PoolStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            });
            assert_eq!(summed, total, "shard split must partition the totals");
            assert_eq!(total, unsharded, "shard count must not change totals");
        }
    }

    #[test]
    fn shard_stats_empty_pool_and_empty_table() {
        // No accesses at all: the split is empty and sums to the (zero)
        // totals rather than inventing zero-valued shard entries.
        let p = BufferPool::new(4);
        assert!(p.shard_stats().is_empty());
        assert_eq!(p.stats(), PoolStats::default());

        // An "empty table" scanned over 4 shards: the morsel planner
        // produces no accesses for any shard, so the map stays empty even
        // though the pool has seen unrelated (unsharded) traffic.
        let mut p = BufferPool::new(4);
        p.access(PageKey::new(7, 0), AccessKind::Cached);
        assert!(p.shard_stats().len() == 1 && p.shard_stats().contains_key(&0));
        let summed = p
            .shard_stats()
            .values()
            .fold(PoolStats::default(), |acc, s| PoolStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            });
        assert_eq!(summed, p.stats());
    }

    #[test]
    fn shard_stats_single_row_shards() {
        // One page per shard (single-row shards): every shard gets exactly
        // one entry with one miss, and the split partitions the totals.
        let mut p = BufferPool::new(8);
        let n = 5u32;
        for s in 0..n {
            p.access(PageKey::new(1, s).with_shard(s), AccessKind::Cached);
        }
        assert_eq!(p.shard_stats().len(), n as usize);
        for s in 0..n {
            let st = p.shard_stats()[&s];
            assert_eq!((st.hits, st.misses), (0, 1), "shard {s}");
            assert_eq!(st.accesses(), 1);
        }
        let summed = p
            .shard_stats()
            .values()
            .fold(PoolStats::default(), |acc, s| PoolStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            });
        assert_eq!(summed, p.stats());
        assert_eq!(p.stats().accesses(), n as u64);
    }

    #[test]
    fn shard_stats_more_shards_than_rows() {
        // 16-way sharding of a 3-page table: only the shards that actually
        // received a morsel appear, idle shards contribute nothing, and
        // the sum still equals the totals exactly.
        let mut p = BufferPool::new(8);
        let rows = 3u32;
        let shards = 16u32;
        for r in 0..rows {
            // Round-robin assignment leaves shards 3..16 idle.
            p.access(PageKey::new(1, r).with_shard(r % shards), AccessKind::Cached);
            // A re-touch from the same shard: hit, same entry.
            p.access(PageKey::new(1, r).with_shard(r % shards), AccessKind::Cached);
        }
        assert_eq!(p.shard_stats().len(), rows as usize);
        for s in rows..shards {
            assert!(!p.shard_stats().contains_key(&s), "idle shard {s} must not appear");
        }
        let summed = p
            .shard_stats()
            .values()
            .fold(PoolStats::default(), |acc, s| PoolStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            });
        assert_eq!(summed, p.stats());
        assert_eq!(p.stats(), PoolStats { hits: rows as u64, misses: rows as u64 });
    }

    #[test]
    fn eviction_deterministic_across_shard_counts() {
        let (_, resident1, _) = sharded_trace(1);
        for shards in [2, 4, 8] {
            let (_, resident, _) = sharded_trace(shards);
            assert_eq!(
                resident, resident1,
                "resident set (hence eviction order) must not depend on shard count"
            );
        }
    }

    #[test]
    fn reset_stats_clears_shard_split() {
        let mut p = BufferPool::new(4);
        p.access(PageKey::new(1, 0).with_shard(3), AccessKind::Cached);
        assert_eq!(p.shard_stats().len(), 1);
        p.reset_stats();
        assert!(p.shard_stats().is_empty());
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[test]
    fn hit_rate() {
        let mut p = BufferPool::new(4);
        let k = PageKey::new(1, 0);
        p.access(k, AccessKind::Cached);
        p.access(k, AccessKind::Cached);
        p.access(k, AccessKind::Cached);
        assert!((p.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(BufferPool::new(1).stats().hit_rate(), 0.0);
    }
}
