//! LRU buffer pool simulator.
//!
//! Every page touch in the executor flows through this pool; misses are the
//! "physical I/O" metric of Figure 16b, and per-object residency fractions
//! are the optional cache features of Bao's plan vectorization (§3.1.1 of
//! the paper: "we augment each scan node with the percentage of the
//! targeted file that is cached").

use std::collections::{BTreeMap, HashMap};

/// Identifies a page: the owning object (table heap or index) and the page
/// number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    pub object: u32,
    pub page: u32,
}

impl PageKey {
    pub fn new(object: u32, page: u32) -> Self {
        PageKey { object, page }
    }
}

/// How a page is being read. Large sequential scans bypass cache insertion
/// (PostgreSQL's ring-buffer behaviour) so one big table scan does not
/// evict the whole working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Random or small-scan access: cached on read.
    Cached,
    /// Bulk sequential access: hit/miss is observed but the page is not
    /// promoted into the pool.
    BulkRead,
}

/// Cumulative hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
}

impl PoolStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A strict-LRU page cache with per-object residency accounting.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    /// page -> LRU stamp of its most recent access.
    resident: HashMap<PageKey, u64>,
    /// stamp -> page, for O(log n) eviction of the least recent stamp.
    order: BTreeMap<u64, PageKey>,
    /// object -> number of its pages currently resident.
    per_object: HashMap<u32, u32>,
    clock: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages. Zero capacity means every
    /// access misses (a permanently cold cache).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            resident: HashMap::new(),
            order: BTreeMap::new(),
            per_object: HashMap::new(),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.resident.len()
    }

    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Touch a page; returns `true` on a cache hit.
    pub fn access(&mut self, key: PageKey, kind: AccessKind) -> bool {
        self.clock += 1;
        let hit = if let Some(stamp) = self.resident.get_mut(&key) {
            // Refresh recency.
            self.order.remove(&*stamp);
            *stamp = self.clock;
            self.order.insert(self.clock, key);
            true
        } else {
            false
        };
        if hit {
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if kind == AccessKind::Cached && self.capacity > 0 {
            self.insert(key);
        }
        false
    }

    /// Is the page resident, without touching recency or stats? Used by the
    /// optimizer's cache-aware cost adjustments.
    pub fn contains(&self, key: PageKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Fraction of an object's `n_pages` pages currently resident.
    pub fn cached_fraction(&self, object: u32, n_pages: u32) -> f64 {
        if n_pages == 0 {
            return 0.0;
        }
        let resident = self.per_object.get(&object).copied().unwrap_or(0);
        (resident as f64 / n_pages as f64).min(1.0)
    }

    /// Drop every page (a cold restart).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
        self.per_object.clear();
    }

    /// Load `pages` pages of `object` as if they had just been read
    /// (warming a cache before an experiment).
    pub fn prewarm(&mut self, object: u32, pages: u32) {
        for p in 0..pages {
            self.clock += 1;
            let key = PageKey::new(object, p);
            if let Some(stamp) = self.resident.get_mut(&key) {
                self.order.remove(&*stamp);
                *stamp = self.clock;
                self.order.insert(self.clock, key);
            } else if self.capacity > 0 {
                self.insert(key);
            }
        }
    }

    fn insert(&mut self, key: PageKey) {
        while self.resident.len() >= self.capacity {
            let (&oldest, &victim) = self.order.iter().next().expect("pool non-empty");
            self.order.remove(&oldest);
            self.resident.remove(&victim);
            let cnt = self.per_object.get_mut(&victim.object).expect("object tracked");
            *cnt -= 1;
            if *cnt == 0 {
                self.per_object.remove(&victim.object);
            }
        }
        self.resident.insert(key, self.clock);
        self.order.insert(self.clock, key);
        *self.per_object.entry(key.object).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_caching() {
        let mut p = BufferPool::new(4);
        let k = PageKey::new(1, 0);
        assert!(!p.access(k, AccessKind::Cached));
        assert!(p.access(k, AccessKind::Cached));
        assert_eq!(p.stats(), PoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = BufferPool::new(2);
        let a = PageKey::new(1, 0);
        let b = PageKey::new(1, 1);
        let c = PageKey::new(1, 2);
        p.access(a, AccessKind::Cached);
        p.access(b, AccessKind::Cached);
        p.access(a, AccessKind::Cached); // refresh a; b is now LRU
        p.access(c, AccessKind::Cached); // evicts b
        assert!(p.contains(a));
        assert!(!p.contains(b));
        assert!(p.contains(c));
    }

    #[test]
    fn bulk_reads_do_not_pollute() {
        let mut p = BufferPool::new(2);
        let a = PageKey::new(1, 0);
        p.access(a, AccessKind::Cached);
        for pg in 0..10 {
            p.access(PageKey::new(2, pg), AccessKind::BulkRead);
        }
        assert!(p.contains(a));
        assert_eq!(p.len(), 1);
        // but bulk reads still see hits on already-resident pages
        assert!(p.access(a, AccessKind::BulkRead));
    }

    #[test]
    fn cached_fraction_tracks_eviction() {
        let mut p = BufferPool::new(2);
        p.access(PageKey::new(7, 0), AccessKind::Cached);
        p.access(PageKey::new(7, 1), AccessKind::Cached);
        assert_eq!(p.cached_fraction(7, 4), 0.5);
        p.access(PageKey::new(8, 0), AccessKind::Cached); // evicts one page of 7
        assert_eq!(p.cached_fraction(7, 4), 0.25);
        assert_eq!(p.cached_fraction(8, 1), 1.0);
        assert_eq!(p.cached_fraction(9, 10), 0.0);
        assert_eq!(p.cached_fraction(8, 0), 0.0);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut p = BufferPool::new(0);
        let k = PageKey::new(1, 0);
        assert!(!p.access(k, AccessKind::Cached));
        assert!(!p.access(k, AccessKind::Cached));
        assert_eq!(p.stats().misses, 2);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn clear_and_prewarm() {
        let mut p = BufferPool::new(8);
        p.prewarm(3, 4);
        assert_eq!(p.cached_fraction(3, 4), 1.0);
        assert_eq!(p.stats().accesses(), 0, "prewarm does not count as traffic");
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.cached_fraction(3, 4), 0.0);
    }

    #[test]
    fn hit_rate() {
        let mut p = BufferPool::new(4);
        let k = PageKey::new(1, 0);
        p.access(k, AccessKind::Cached);
        p.access(k, AccessKind::Cached);
        p.access(k, AccessKind::Cached);
        assert!((p.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(BufferPool::new(1).stats().hit_rate(), 0.0);
    }
}
