//! The database catalog: named tables, their heap objects, and indexes.

use crate::index::Index;
use crate::table::Table;
use bao_common::{BaoError, Result};
use std::collections::HashMap;

/// Stable identifier of a table within a [`Database`].
pub type TableId = u32;

/// Identifier of a pageable object (a table heap or an index), used as the
/// object half of a [`crate::PageKey`]. Unique across the database,
/// including across drops, so a recreated table never aliases stale cache
/// entries.
pub type ObjectId = u32;

/// An index together with its buffer-pool object id.
#[derive(Debug, Clone)]
pub struct StoredIndex {
    pub index: Index,
    pub object: ObjectId,
}

/// A table, its heap object id, and its indexes.
#[derive(Debug, Clone)]
pub struct StoredTable {
    pub table: Table,
    pub heap_object: ObjectId,
    pub indexes: Vec<StoredIndex>,
}

impl StoredTable {
    pub fn index_on(&self, column: &str) -> Option<&StoredIndex> {
        self.indexes.iter().find(|i| i.index.column == column)
    }
}

/// A collection of tables and indexes. Mutable, because the Stack workload
/// loads data mid-run and the Corp workload changes the schema mid-run.
#[derive(Debug, Default, Clone)]
pub struct Database {
    slots: Vec<Option<StoredTable>>,
    by_name: HashMap<String, TableId>,
    next_object: ObjectId,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table; its heap gets a fresh object id.
    pub fn create_table(&mut self, table: Table) -> Result<TableId> {
        if self.by_name.contains_key(&table.name) {
            return Err(BaoError::AlreadyExists(format!("table {}", table.name)));
        }
        let heap_object = self.alloc_object();
        let id = self.slots.len() as TableId;
        self.by_name.insert(table.name.clone(), id);
        self.slots.push(Some(StoredTable { table, heap_object, indexes: vec![] }));
        Ok(id)
    }

    /// Remove a table (Corp's schema change drops the wide fact table).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let id = self.table_id(name)?;
        self.slots[id as usize] = None;
        self.by_name.remove(name);
        Ok(())
    }

    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| BaoError::NotFound(format!("table {name}")))
    }

    pub fn get(&self, id: TableId) -> Result<&StoredTable> {
        self.slots
            .get(id as usize)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| BaoError::NotFound(format!("table id {id}")))
    }

    pub fn by_name(&self, name: &str) -> Result<&StoredTable> {
        self.get(self.table_id(name)?)
    }

    /// Create (or rebuild) an index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        let id = self.table_id(table)?;
        let object = self.alloc_object();
        let stored = self.slots[id as usize].as_mut().expect("live table");
        let index = Index::build(&stored.table, column)?;
        // Rebuilds replace in place but keep a fresh object id so the pool
        // never serves pages of the old index image.
        stored.indexes.retain(|i| i.index.column != column);
        stored.indexes.push(StoredIndex { index, object });
        Ok(())
    }

    /// Bulk-append rows to a table and rebuild its indexes (the Stack
    /// workload's "load a month of data at a time").
    pub fn append_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<crate::Value>>,
    ) -> Result<usize> {
        let id = self.table_id(table)?;
        // Rebuilt indexes get fresh object ids (allocated before the mutable
        // borrow of the slot).
        let n_indexes = self.slots[id as usize].as_ref().expect("live table").indexes.len();
        let new_objects: Vec<ObjectId> = (0..n_indexes).map(|_| self.alloc_object()).collect();
        let stored = self.slots[id as usize].as_mut().expect("live table");
        let n = stored.table.insert_many(rows)?;
        for (slot, object) in stored.indexes.iter_mut().zip(new_objects) {
            slot.index = Index::build(&stored.table, &slot.index.column)?;
            slot.object = object;
        }
        Ok(n)
    }

    /// Names of all live tables, in creation order.
    pub fn table_names(&self) -> Vec<&str> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|t| t.table.name.as_str()))
            .collect()
    }

    /// Total approximate data size (heaps only), for Table 1 reporting.
    pub fn total_size_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|t| t.table.size_bytes())
            .sum()
    }

    /// Total heap pages across live tables (used to size "in-memory"
    /// buffer pools for the Figure 13 experiment).
    pub fn total_heap_pages(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|t| t.table.n_pages() as u64)
            .sum()
    }

    fn alloc_object(&mut self) -> ObjectId {
        let o = self.next_object;
        self.next_object += 1;
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnDef, Schema};
    use crate::value::{DataType, Value};

    fn int_table(name: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(name, Schema::new(vec![ColumnDef::new("k", DataType::Int)]));
        for &v in vals {
            t.insert(vec![Value::Int(v)]).unwrap();
        }
        t
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        let id = db.create_table(int_table("a", &[1, 2])).unwrap();
        assert_eq!(db.table_id("a").unwrap(), id);
        assert_eq!(db.by_name("a").unwrap().table.row_count(), 2);
        assert!(db.by_name("b").is_err());
        assert_eq!(db.table_names(), vec!["a"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = Database::new();
        db.create_table(int_table("a", &[])).unwrap();
        assert!(db.create_table(int_table("a", &[])).is_err());
    }

    #[test]
    fn object_ids_unique_across_drops() {
        let mut db = Database::new();
        db.create_table(int_table("a", &[1])).unwrap();
        let o1 = db.by_name("a").unwrap().heap_object;
        db.drop_table("a").unwrap();
        db.create_table(int_table("a", &[1])).unwrap();
        let o2 = db.by_name("a").unwrap().heap_object;
        assert_ne!(o1, o2);
    }

    #[test]
    fn index_lifecycle() {
        let mut db = Database::new();
        db.create_table(int_table("a", &[3, 1, 2])).unwrap();
        db.create_index("a", "k").unwrap();
        let st = db.by_name("a").unwrap();
        let idx = st.index_on("k").unwrap();
        assert_eq!(idx.index.lookup(1).rows, vec![1]);
        assert!(st.index_on("missing").is_none());
        // rebuilding replaces rather than duplicates
        db.create_index("a", "k").unwrap();
        assert_eq!(db.by_name("a").unwrap().indexes.len(), 1);
    }

    #[test]
    fn append_rebuilds_indexes_with_fresh_objects() {
        let mut db = Database::new();
        db.create_table(int_table("a", &[1])).unwrap();
        db.create_index("a", "k").unwrap();
        let old_obj = db.by_name("a").unwrap().indexes[0].object;
        let n = db.append_rows("a", vec![vec![Value::Int(5)], vec![Value::Int(0)]]).unwrap();
        assert_eq!(n, 2);
        let st = db.by_name("a").unwrap();
        assert_eq!(st.table.row_count(), 3);
        assert_eq!(st.index_on("k").unwrap().index.lookup(5).rows, vec![1]);
        assert_ne!(st.indexes[0].object, old_obj);
    }

    #[test]
    fn drop_then_access_errors() {
        let mut db = Database::new();
        let id = db.create_table(int_table("a", &[])).unwrap();
        db.drop_table("a").unwrap();
        assert!(db.get(id).is_err());
        assert!(db.drop_table("a").is_err());
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn size_accounting() {
        let mut db = Database::new();
        db.create_table(int_table("a", &(0..100).collect::<Vec<_>>())).unwrap();
        assert_eq!(db.total_size_bytes(), 800);
        assert_eq!(db.total_heap_pages(), 1);
    }
}
