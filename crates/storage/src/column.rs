//! Columnar cell storage.

use crate::value::{DataType, Value};
use bao_common::{BaoError, Result};
use std::collections::HashMap;

/// One column's worth of cells, stored contiguously by type.
///
/// Text columns are dictionary-encoded: each cell is a `u32` code into a
/// per-column dictionary, which keeps equality predicates and joins on text
/// columns as cheap as integer comparisons while still round-tripping the
/// original strings.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text {
        codes: Vec<u32>,
        dict: Vec<String>,
        lookup: HashMap<String, u32>,
    },
}

impl ColumnData {
    pub fn new(ty: DataType) -> ColumnData {
        match ty {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Text => ColumnData::Text {
                codes: Vec::new(),
                dict: Vec::new(),
                lookup: HashMap::new(),
            },
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Text { .. } => DataType::Text,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value; errors on a type mismatch.
    pub fn push(&mut self, v: Value) -> Result<()> {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(x),
            (ColumnData::Float(col), Value::Float(x)) => col.push(x),
            (ColumnData::Float(col), Value::Int(x)) => col.push(x as f64),
            (ColumnData::Text { codes, dict, lookup }, Value::Str(s)) => {
                let code = *lookup.entry(s.clone()).or_insert_with(|| {
                    dict.push(s);
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            (col, v) => {
                return Err(BaoError::TypeMismatch(format!(
                    "cannot store {} in {} column",
                    v.data_type(),
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Read cell `row` back as a [`Value`]. Panics if out of range (callers
    /// always iterate within `len()`).
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Text { codes, dict, .. } => Value::Str(dict[codes[row] as usize].clone()),
        }
    }

    /// Cell as a sortable/joinable integer key: the raw value for ints, the
    /// dictionary code for text. `None` for float columns (never join keys).
    pub fn key_at(&self, row: usize) -> Option<i64> {
        match self {
            ColumnData::Int(v) => Some(v[row]),
            ColumnData::Text { codes, .. } => Some(codes[row] as i64),
            ColumnData::Float(_) => None,
        }
    }

    /// Float view of cell `row` (ints widen); `None` for text.
    pub fn float_at(&self, row: usize) -> Option<f64> {
        match self {
            ColumnData::Int(v) => Some(v[row] as f64),
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Text { .. } => None,
        }
    }

    /// Dictionary code for a string literal, if this is a text column and
    /// the literal occurs in it.
    pub fn code_for(&self, s: &str) -> Option<u32> {
        match self {
            ColumnData::Text { lookup, .. } => lookup.get(s).copied(),
            _ => None,
        }
    }

    /// Number of distinct dictionary entries (text columns only).
    pub fn dict_len(&self) -> usize {
        match self {
            ColumnData::Text { dict, .. } => dict.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(5)).unwrap();
        c.push(Value::Int(-3)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Value::Int(-3));
        assert_eq!(c.key_at(0), Some(5));
        assert_eq!(c.float_at(0), Some(5.0));
    }

    #[test]
    fn text_dictionary_dedups() {
        let mut c = ColumnData::new(DataType::Text);
        for s in ["movie", "tv", "movie", "movie"] {
            c.push(Value::Str(s.into())).unwrap();
        }
        assert_eq!(c.dict_len(), 2);
        assert_eq!(c.get(2), Value::Str("movie".into()));
        assert_eq!(c.code_for("tv"), Some(1));
        assert_eq!(c.code_for("radio"), None);
        // codes are stable join keys
        assert_eq!(c.key_at(0), c.key_at(3));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = ColumnData::new(DataType::Float);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = ColumnData::new(DataType::Int);
        assert!(c.push(Value::Str("x".into())).is_err());
        let mut c = ColumnData::new(DataType::Text);
        assert!(c.push(Value::Int(1)).is_err());
    }

    #[test]
    fn float_column_has_no_key() {
        let mut c = ColumnData::new(DataType::Float);
        c.push(Value::Float(1.5)).unwrap();
        assert_eq!(c.key_at(0), None);
    }
}
