//! Ordered secondary indexes.
//!
//! Indexes are modelled as a sorted `(key, row_id)` array packed into index
//! pages — behaviourally a B+-tree leaf level plus an analytic interior
//! height. Lookups report which index pages they touch so the executor can
//! charge buffer-pool traffic for index scans and for the inner side of
//! parameterized nested-loop joins.

use crate::column::ColumnData;
use crate::table::Table;
use bao_common::{BaoError, Result};

/// Entries per index page: 8 KiB page / ~16 bytes per (key, row) entry,
/// with some fill-factor slack.
pub const INDEX_ENTRIES_PER_PAGE: usize = 400;

/// An ordered index over one integer or dictionary-coded text column.
#[derive(Debug, Clone)]
pub struct Index {
    pub table: String,
    pub column: String,
    /// Sorted by key, then row id.
    entries: Vec<(i64, u32)>,
}

/// Result of an index range probe: matching row ids plus the index pages
/// touched while walking the tree and leaf level.
#[derive(Debug, Clone, Default)]
pub struct IndexProbe {
    pub rows: Vec<u32>,
    pub leaf_pages: Vec<u32>,
    /// Interior (non-leaf) levels descended; charged as one page each.
    pub height: u32,
}

impl Index {
    /// Build an index over `table.column`. Only integer-keyed columns
    /// (ints and dictionary-coded text) are indexable.
    pub fn build(table: &Table, column: &str) -> Result<Index> {
        let col = table.column(column)?;
        if matches!(col, ColumnData::Float(_)) {
            return Err(BaoError::TypeMismatch(format!(
                "cannot index float column {}.{column}",
                table.name
            )));
        }
        let mut entries: Vec<(i64, u32)> = (0..table.row_count())
            .map(|r| (col.key_at(r).expect("keyed column"), r as u32))
            .collect();
        entries.sort_unstable();
        Ok(Index { table: table.name.clone(), column: column.to_string(), entries })
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of leaf pages occupied.
    pub fn n_pages(&self) -> u32 {
        self.entries.len().div_ceil(INDEX_ENTRIES_PER_PAGE) as u32
    }

    /// Analytic B+-tree height (interior levels above the leaves).
    pub fn height(&self) -> u32 {
        let mut pages = self.n_pages() as u64;
        let mut h = 0;
        while pages > 1 {
            pages = pages.div_ceil(INDEX_ENTRIES_PER_PAGE as u64);
            h += 1;
        }
        h
    }

    /// Probe for keys in `[lo, hi]` (inclusive both ends).
    pub fn range(&self, lo: i64, hi: i64) -> IndexProbe {
        if lo > hi || self.entries.is_empty() {
            return IndexProbe { rows: vec![], leaf_pages: vec![], height: self.height() };
        }
        let start = self.entries.partition_point(|&(k, _)| k < lo);
        let end = self.entries.partition_point(|&(k, _)| k <= hi);
        let rows: Vec<u32> = self.entries[start..end].iter().map(|&(_, r)| r).collect();
        let first_page = (start / INDEX_ENTRIES_PER_PAGE) as u32;
        // `end` is exclusive; the last touched entry is end-1.
        let last_page = if end > start {
            ((end - 1) / INDEX_ENTRIES_PER_PAGE) as u32
        } else {
            first_page
        };
        IndexProbe {
            rows,
            leaf_pages: (first_page..=last_page).collect(),
            height: self.height(),
        }
    }

    /// Probe for a single key (common case: parameterized join lookups).
    pub fn lookup(&self, key: i64) -> IndexProbe {
        self.range(key, key)
    }

    /// All row ids in key order — an ordered full-index scan, used by
    /// index-only scans and by merge joins that can skip their sort.
    pub fn ordered_rows(&self) -> impl Iterator<Item = (i64, u32)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnDef, Schema};
    use crate::value::{DataType, Value};

    fn table_with_ints(vals: &[i64]) -> Table {
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("k", DataType::Int)]));
        for &v in vals {
            t.insert(vec![Value::Int(v)]).unwrap();
        }
        t
    }

    #[test]
    fn range_returns_matching_rows() {
        let t = table_with_ints(&[5, 1, 9, 5, 3]);
        let idx = Index::build(&t, "k").unwrap();
        let probe = idx.range(3, 5);
        // rows with values 3,5,5 -> row ids 4,0,3 in key order
        assert_eq!(probe.rows, vec![4, 0, 3]);
        let probe = idx.lookup(9);
        assert_eq!(probe.rows, vec![2]);
        let probe = idx.lookup(100);
        assert!(probe.rows.is_empty());
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let t = table_with_ints(&[1, 2, 3]);
        let idx = Index::build(&t, "k").unwrap();
        assert!(idx.range(5, 2).rows.is_empty());
        let empty = Index::build(&table_with_ints(&[]), "k").unwrap();
        assert!(empty.is_empty());
        assert!(empty.range(0, 10).rows.is_empty());
        assert_eq!(empty.n_pages(), 0);
    }

    #[test]
    fn page_accounting() {
        let n = INDEX_ENTRIES_PER_PAGE * 2 + 1;
        let vals: Vec<i64> = (0..n as i64).collect();
        let t = table_with_ints(&vals);
        let idx = Index::build(&t, "k").unwrap();
        assert_eq!(idx.n_pages(), 3);
        assert_eq!(idx.height(), 1);
        let probe = idx.range(0, (n - 1) as i64);
        assert_eq!(probe.leaf_pages, vec![0, 1, 2]);
        let probe = idx.lookup(0);
        assert_eq!(probe.leaf_pages, vec![0]);
    }

    #[test]
    fn float_columns_not_indexable() {
        let mut t = Table::new("f", Schema::new(vec![ColumnDef::new("x", DataType::Float)]));
        t.insert(vec![Value::Float(1.0)]).unwrap();
        assert!(Index::build(&t, "x").is_err());
    }

    #[test]
    fn text_columns_index_on_codes() {
        let mut t = Table::new("s", Schema::new(vec![ColumnDef::new("kind", DataType::Text)]));
        for s in ["movie", "tv", "movie"] {
            t.insert(vec![Value::Str(s.into())]).unwrap();
        }
        let idx = Index::build(&t, "kind").unwrap();
        let code = t.column("kind").unwrap().code_for("movie").unwrap() as i64;
        assert_eq!(idx.lookup(code).rows, vec![0, 2]);
    }

    #[test]
    fn ordered_rows_sorted() {
        let t = table_with_ints(&[3, 1, 2]);
        let idx = Index::build(&t, "k").unwrap();
        let keys: Vec<i64> = idx.ordered_rows().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }
}
