//! Columnar storage engine substrate.
//!
//! The paper runs Bao on top of PostgreSQL; this crate is the storage half
//! of our PostgreSQL-like substrate (see DESIGN.md §1): typed columnar
//! tables laid out in fixed-size pages, ordered secondary indexes, and an
//! LRU buffer pool whose hit/miss accounting drives both the executor's
//! simulated I/O costs and Bao's optional cache-state features.

pub mod buffer;
pub mod catalog;
pub mod column;
pub mod index;
pub mod shard;
pub mod table;
pub mod value;

pub use buffer::{AccessKind, BufferPool, PageKey, PoolStats};
pub use shard::{morsels, ShardSpec};
pub use catalog::{Database, ObjectId, StoredIndex, StoredTable, TableId};
pub use column::ColumnData;
pub use index::Index;
pub use table::{ColumnDef, Schema, Table, PAGE_BYTES};
pub use value::{DataType, Value};
