//! Table sharding for morsel-driven parallel execution (DESIGN.md §13).
//!
//! A `ShardSpec` partitions a table's row (or page) space into `n_shards`
//! contiguous range shards, and hashes join keys into hash shards. Shards
//! are a *logical* partitioning: the underlying columnar storage is
//! untouched, and the shard id only flows into `PageKey` annotations and
//! the executor's per-shard work lists. Every function here is pure so
//! shard assignment is identical no matter which worker asks.

use std::ops::Range;

/// A partitioning of `n` items (rows or pages) into `n_shards` contiguous
/// balanced ranges: the first `n % n_shards` shards get one extra item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    n_shards: u32,
}

impl ShardSpec {
    /// A spec with at least one shard (zero clamps to one).
    pub fn new(n_shards: usize) -> Self {
        ShardSpec { n_shards: (n_shards.max(1) as u32).max(1) }
    }

    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// The contiguous index range owned by `shard` out of `n` items.
    /// Empty when the shard index is past `n`.
    pub fn range(&self, shard: u32, n: u32) -> Range<u32> {
        let k = self.n_shards;
        let base = n / k;
        let rem = n % k;
        let start = shard.min(k) * base + shard.min(rem);
        let len = if shard < k { base + u32::from(shard < rem) } else { 0 };
        start..(start + len)
    }

    /// All per-shard ranges over `n` items, in shard order. Concatenating
    /// them reproduces `0..n` exactly — the merge-order invariant sharded
    /// execution relies on.
    pub fn ranges(&self, n: u32) -> Vec<Range<u32>> {
        (0..self.n_shards).map(|s| self.range(s, n)).collect()
    }

    /// Which shard owns item `idx` out of `n`. Inverse of `range`.
    pub fn shard_of(&self, idx: u32, n: u32) -> u32 {
        let k = self.n_shards;
        let base = n / k;
        let rem = n % k;
        let fat = rem * (base + 1);
        if idx < fat {
            idx / (base + 1)
        } else if base > 0 {
            rem + (idx - fat) / base
        } else {
            // n < k: every item lands in its own (fat) shard.
            k.saturating_sub(1)
        }
    }

    /// Hash-shard a join key. A splitmix64-style finalizer spreads
    /// low-entropy integer keys before the modulo; the assignment is a
    /// pure function of (key, n_shards) so build and probe sides agree.
    pub fn hash_shard(&self, key: i64) -> u32 {
        let mut x = key as u64;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.n_shards as u64) as u32
    }
}

/// Split a contiguous row range into fixed-size morsels of at most
/// `morsel_rows` rows, in range order. Zero `morsel_rows` clamps to one.
pub fn morsels(range: Range<u32>, morsel_rows: u32) -> Vec<Range<u32>> {
    let step = morsel_rows.max(1);
    let mut out = Vec::new();
    let mut lo = range.start;
    while lo < range.end {
        let hi = range.end.min(lo.saturating_add(step));
        out.push(lo..hi);
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_concatenate_to_full_span() {
        for k in [1usize, 2, 3, 4, 8] {
            for n in [0u32, 1, 5, 7, 64, 1000] {
                let spec = ShardSpec::new(k);
                let ranges = spec.ranges(n);
                assert_eq!(ranges.len(), k);
                let mut next = 0u32;
                for r in &ranges {
                    assert_eq!(r.start, next, "k={k} n={n}");
                    next = r.end;
                }
                assert_eq!(next, n);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<u32> = ranges.iter().map(|r| r.end - r.start).collect();
                let (lo, hi) = (sizes.iter().min(), sizes.iter().max());
                assert!(hi.unwrap_or(&0) - lo.unwrap_or(&0) <= 1);
            }
        }
    }

    #[test]
    fn shard_of_inverts_range() {
        for k in [1usize, 2, 4, 8] {
            for n in [1u32, 3, 8, 17, 256] {
                let spec = ShardSpec::new(k);
                for idx in 0..n {
                    let s = spec.shard_of(idx, n);
                    assert!(spec.range(s, n).contains(&idx), "k={k} n={n} idx={idx}");
                }
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let spec = ShardSpec::new(0);
        assert_eq!(spec.n_shards(), 1);
        assert_eq!(spec.range(0, 10), 0..10);
    }

    #[test]
    fn hash_shard_in_range_and_stable() {
        let spec = ShardSpec::new(4);
        for key in [-5i64, 0, 1, 42, i64::MAX, i64::MIN] {
            let s = spec.hash_shard(key);
            assert!(s < 4);
            assert_eq!(s, spec.hash_shard(key), "pure function of the key");
        }
        // Sequential keys should not all collapse onto one shard.
        let mut seen = [false; 4];
        for key in 0..64 {
            seen[spec.hash_shard(key) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "finalizer spreads sequential keys");
    }

    #[test]
    fn morsels_cover_range_in_order() {
        assert_eq!(morsels(3..3, 4), Vec::<Range<u32>>::new());
        assert_eq!(morsels(0..10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(morsels(5..7, 0), vec![5..6, 6..7], "zero morsel size clamps to one");
        let ms = morsels(0..1000, 64);
        assert_eq!(ms.first().map(|r| r.start), Some(0));
        assert_eq!(ms.last().map(|r| r.end), Some(1000));
        assert!(ms.windows(2).all(|w| w[0].end == w[1].start));
    }
}
