//! Tables: schemas plus paged columnar data.

use crate::column::ColumnData;
use crate::value::{DataType, Value};
use bao_common::{BaoError, Result};

/// Fixed page size, matching PostgreSQL's default block size.
pub const PAGE_BYTES: usize = 8_192;

/// A named, typed column in a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef { name: name.into(), ty }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Approximate stored width of one row, in bytes.
    pub fn row_width_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.ty.width_bytes()).sum::<usize>().max(1)
    }

    /// How many rows fit in one heap page.
    pub fn rows_per_page(&self) -> usize {
        (PAGE_BYTES / self.row_width_bytes()).max(1)
    }
}

/// A heap table: schema plus columnar data, addressed in pages.
///
/// Rows are identified by their insertion position (`u32`), which also
/// determines their heap page — the engine's analogue of a clustered-by-
/// insertion-order heap, so index scans on non-key columns incur the random
/// page access pattern the cost model expects.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub columns: Vec<ColumnData>,
    rows: usize,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema.columns.iter().map(|c| ColumnData::new(c.ty)).collect();
        Table { name: name.into(), schema, columns, rows: 0 }
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    pub fn rows_per_page(&self) -> usize {
        self.schema.rows_per_page()
    }

    /// Number of heap pages currently occupied.
    pub fn n_pages(&self) -> u32 {
        if self.rows == 0 {
            0
        } else {
            self.rows.div_ceil(self.rows_per_page()) as u32
        }
    }

    /// The heap page holding row `row_id`.
    pub fn page_of_row(&self, row_id: u32) -> u32 {
        (row_id as usize / self.rows_per_page()) as u32
    }

    /// Append one row. The row must match the schema's arity and types.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(BaoError::TypeMismatch(format!(
                "table {}: row has {} values, schema has {} columns",
                self.name,
                row.len(),
                self.columns.len()
            )));
        }
        // Validate all cells before mutating any column so a failed insert
        // leaves the table unchanged.
        for (col, v) in self.columns.iter().zip(row.iter()) {
            let ok = matches!(
                (col.data_type(), v.data_type()),
                (DataType::Int, DataType::Int)
                    | (DataType::Float, DataType::Float)
                    | (DataType::Float, DataType::Int)
                    | (DataType::Text, DataType::Text)
            );
            if !ok {
                return Err(BaoError::TypeMismatch(format!(
                    "table {}: cannot store {} in {} column",
                    self.name,
                    v.data_type(),
                    col.data_type()
                )));
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v).expect("validated above");
        }
        self.rows += 1;
        Ok(())
    }

    /// Bulk-append rows (used by the workload generators' data loads).
    pub fn insert_many(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    pub fn column(&self, name: &str) -> Result<&ColumnData> {
        let idx = self
            .schema
            .column_index(name)
            .ok_or_else(|| BaoError::NotFound(format!("column {}.{}", self.name, name)))?;
        Ok(&self.columns[idx])
    }

    pub fn column_by_index(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Approximate total size in bytes (for Table 1-style reporting).
    pub fn size_bytes(&self) -> usize {
        self.rows * self.schema.row_width_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ]),
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = two_col_table();
        t.insert(vec![Value::Int(1), Value::Str("a".into())]).unwrap();
        t.insert(vec![Value::Int(2), Value::Str("b".into())]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column("id").unwrap().get(1), Value::Int(2));
        assert_eq!(t.column("name").unwrap().get(0), Value::Str("a".into()));
    }

    #[test]
    fn arity_and_type_checks_are_atomic() {
        let mut t = two_col_table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        // wrong type in second column: first column must NOT have grown
        assert!(t.insert(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column("id").unwrap().len(), 0);
    }

    #[test]
    fn paging_math() {
        let mut t = Table::new(
            "n",
            Schema::new(vec![ColumnDef::new("x", DataType::Int)]),
        );
        let rpp = t.rows_per_page();
        assert_eq!(rpp, PAGE_BYTES / 8);
        assert_eq!(t.n_pages(), 0);
        for i in 0..(rpp + 1) {
            t.insert(vec![Value::Int(i as i64)]).unwrap();
        }
        assert_eq!(t.n_pages(), 2);
        assert_eq!(t.page_of_row(0), 0);
        assert_eq!(t.page_of_row(rpp as u32), 1);
    }

    #[test]
    fn schema_lookup() {
        let t = two_col_table();
        assert_eq!(t.schema.column_index("name"), Some(1));
        assert_eq!(t.schema.column_index("missing"), None);
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn row_width_and_size() {
        let t = two_col_table();
        assert_eq!(t.schema.row_width_bytes(), 40);
        assert_eq!(t.size_bytes(), 0);
    }
}
