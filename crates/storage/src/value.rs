//! Scalar values and data types.

use bao_common::json::{FromJson, Json, ToJson};
use bao_common::{BaoError, Result};
use std::fmt;

/// Column data types supported by the engine.
///
/// The synthetic workloads join on integer keys and filter on integer,
/// float, and dictionary-encoded text columns; NULLs are not modelled
/// (none of the paper's experiments depend on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

impl DataType {
    /// Approximate on-disk width in bytes, used to compute rows-per-page.
    pub fn width_bytes(self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Float => 8,
            DataType::Text => 32,
        }
    }
}

/// A scalar value: query literals, generated cell values, executor rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        // Externally tagged, so Int(3) and Float(3.0) stay distinct.
        match self {
            Value::Int(v) => Json::obj([("Int", v.to_json())]),
            Value::Float(v) => Json::obj([("Float", v.to_json())]),
            Value::Str(s) => Json::obj([("Str", s.to_json())]),
        }
    }
}

impl FromJson for Value {
    fn from_json(j: &Json) -> Result<Value> {
        if let Some(v) = j.get("Int") {
            Ok(Value::Int(i64::from_json(v)?))
        } else if let Some(v) = j.get("Float") {
            Ok(Value::Float(f64::from_json(v)?))
        } else if let Some(v) = j.get("Str") {
            Ok(Value::Str(String::from_json(v)?))
        } else {
            Err(BaoError::Parse(format!("expected a Value variant, got {j:?}")))
        }
    }
}

impl Value {
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Text,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::Float(1.5).data_type(), DataType::Float);
        assert_eq!(Value::Str("x".into()).data_type(), DataType::Text);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Float(2.0).as_int(), None);
        // Ints widen to float for mixed comparisons.
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Str("abc".into()).to_string(), "'abc'");
        assert_eq!(DataType::Int.to_string(), "INT");
    }

    #[test]
    fn widths() {
        assert_eq!(DataType::Int.width_bytes(), 8);
        assert_eq!(DataType::Text.width_bytes(), 32);
    }
}
