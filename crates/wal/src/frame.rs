//! Binary framing for WAL segments (DESIGN.md §14).
//!
//! A segment file is an 8-byte header followed by zero or more frames:
//!
//! ```text
//! header:  b"BAOW"  u16-LE version (=1)  u16-LE reserved (=0)
//! frame:   u32-LE payload_len  payload bytes  u32-LE crc32(payload)
//! ```
//!
//! The checksum trails the payload so a torn write (power cut mid-frame)
//! is indistinguishable from a short file only until the CRC check — a
//! complete-looking frame with a bad checksum is classified [`Corrupt`],
//! while a frame whose bytes simply run out is [`Incomplete`]. Recovery
//! treats both as the end of the valid prefix and truncates there;
//! neither is ever replayed.
//!
//! [`Corrupt`]: FrameDecode::Corrupt
//! [`Incomplete`]: FrameDecode::Incomplete

use bao_common::{BaoError, Result};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"BAOW";
/// Current segment format version.
pub const SEGMENT_VERSION: u16 = 1;
/// Total segment header length in bytes (magic + version + reserved).
pub const SEGMENT_HEADER_LEN: usize = 8;
/// Hard upper bound on a single frame's payload (256 MiB): anything
/// larger is treated as corruption of the length prefix, not a real
/// record, so a flipped high bit cannot make the scanner allocate wild.
pub const MAX_FRAME: usize = 1 << 28;
/// Fixed per-frame overhead: 4-byte length prefix + 4-byte CRC trailer.
pub const FRAME_OVERHEAD: usize = 8;

/// CRC32 (IEEE, polynomial 0xEDB88320) lookup table, built at compile
/// time so the checksum stays dependency-free.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32-IEEE of `bytes` (the zlib/gzip polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash — used for config fingerprints in `RunHeader`
/// records (cheap, stable, in-tree).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialize the 8-byte segment header.
pub fn encode_segment_header() -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..4].copy_from_slice(&SEGMENT_MAGIC);
    h[4..6].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h
}

/// Validate a segment header; `Err` on bad magic, unknown version, or a
/// file too short to hold a header at all.
pub fn decode_segment_header(bytes: &[u8]) -> Result<()> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(BaoError::Parse(format!(
            "wal segment too short for header: {} bytes",
            bytes.len()
        )));
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(BaoError::Parse("wal segment has bad magic".into()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION {
        return Err(BaoError::Parse(format!("unsupported wal segment version {version}")));
    }
    Ok(())
}

/// Append one frame (`[len][payload][crc]`) for `payload` onto `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Outcome of decoding one frame from the head of a byte slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecode {
    /// A whole, checksum-valid frame: its payload and the total bytes it
    /// occupied (length prefix + payload + CRC trailer).
    Complete { payload: Vec<u8>, consumed: usize },
    /// The bytes run out before the frame does — a torn tail write (or a
    /// clean end-of-log when zero bytes remain).
    Incomplete,
    /// A structurally complete frame whose checksum does not match, or a
    /// length prefix beyond [`MAX_FRAME`] — bit rot or a misframed tail.
    Corrupt { reason: String },
}

/// Decode the frame starting at `bytes[0]`. Never panics: every byte
/// pattern maps onto one of the three [`FrameDecode`] outcomes.
pub fn decode_frame(bytes: &[u8]) -> FrameDecode {
    if bytes.len() < 4 {
        return FrameDecode::Incomplete;
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_FRAME {
        return FrameDecode::Corrupt { reason: format!("frame length {len} exceeds MAX_FRAME") };
    }
    let total = FRAME_OVERHEAD + len;
    if bytes.len() < total {
        return FrameDecode::Incomplete;
    }
    let payload = &bytes[4..4 + len];
    let stored = u32::from_le_bytes([
        bytes[4 + len],
        bytes[5 + len],
        bytes[6 + len],
        bytes[7 + len],
    ]);
    let actual = crc32(payload);
    if stored != actual {
        return FrameDecode::Corrupt {
            reason: format!("frame checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"),
        };
    }
    FrameDecode::Complete { payload: payload.to_vec(), consumed: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        encode_frame(b"hello wal", &mut buf);
        encode_frame(b"", &mut buf);
        match decode_frame(&buf) {
            FrameDecode::Complete { payload, consumed } => {
                assert_eq!(payload, b"hello wal");
                match decode_frame(&buf[consumed..]) {
                    FrameDecode::Complete { payload, consumed } => {
                        assert_eq!(payload, b"");
                        assert_eq!(consumed, FRAME_OVERHEAD);
                    }
                    other => panic!("second frame: {other:?}"),
                }
            }
            other => panic!("first frame: {other:?}"),
        }
    }

    #[test]
    fn truncated_length_prefix_is_incomplete() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        for cut in 0..4 {
            assert_eq!(decode_frame(&buf[..cut]), FrameDecode::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn torn_payload_is_incomplete() {
        let mut buf = Vec::new();
        encode_frame(b"a longer payload body", &mut buf);
        for cut in 4..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]), FrameDecode::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_bit_is_corrupt() {
        let mut buf = Vec::new();
        encode_frame(b"checksummed", &mut buf);
        // Flip a bit in every payload byte position in turn.
        for pos in 4..buf.len() - 4 {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            match decode_frame(&bad) {
                FrameDecode::Corrupt { .. } => {}
                other => panic!("flip at {pos}: {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_length_prefix_is_corrupt() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        match decode_frame(&buf) {
            FrameDecode::Corrupt { reason } => assert!(reason.contains("MAX_FRAME")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn segment_header_round_trip() {
        let h = encode_segment_header();
        decode_segment_header(&h).unwrap();
        assert!(decode_segment_header(&h[..6]).is_err());
        let mut bad = h;
        bad[0] = b'X';
        assert!(decode_segment_header(&bad).is_err());
        let mut v2 = h;
        v2[4] = 2;
        assert!(decode_segment_header(&v2).is_err());
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }
}
