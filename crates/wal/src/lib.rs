//! `bao-wal`: append-only, checksummed write-ahead logging for Bao's
//! persistent assets — the experience buffer, the retrain schedule, model
//! weight checkpoints, and plan-cache invalidation events (DESIGN.md §14).
//!
//! The paper treats accumulated experience and the retrained TCNN as the
//! system's durable state; this crate makes a process restart recoverable
//! instead of amnesiac. Three layers:
//!
//! * [`frame`] — the binary framing: length-prefixed, CRC32-checksummed
//!   frames inside magic-headered segment files (in-tree, no deps).
//! * [`record`] — the logical records ([`WalRecord`]) and the recovery
//!   telemetry ([`RecoveryReport`]), both JSON round-trippable.
//! * [`log`] — the [`Wal`] itself: group-committed appends, segment
//!   rotation, fsync ordering, and the recovery scan that detects torn
//!   and corrupt tails and truncates them cleanly.
//!
//! Semantic replay (turning scanned records back into a live `Bao`) lives
//! in `bao_harness::recover`, next to the runner state it reconstructs.

pub mod frame;
pub mod log;
pub mod record;

pub use frame::{crc32, fnv64};
pub use log::{DurabilityConfig, FsyncPolicy, ScannedFrame, Wal, WalScan};
pub use record::{RecoveryReport, WalRecord};
