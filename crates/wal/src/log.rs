//! The write-ahead log proper: segment files, group commit, rotation,
//! the recovery scan, and physical truncation on resume.
//!
//! Durability contract (DESIGN.md §14):
//!
//! * [`Wal::append`] is **infallible** — it only buffers the encoded
//!   frame. All I/O (and therefore all I/O errors) happens in
//!   [`Wal::commit`], which the harness calls once per query (serial
//!   path) or once per wave (serving path — this is the group commit
//!   that amortizes fsync cost across a whole wave of queries).
//! * A frame never spans segments: commit writes the whole pending
//!   batch into the current segment, and rotation happens *between*
//!   commits, so a segment may overshoot `segment_bytes` by at most one
//!   batch.
//! * Fsync ordering: a finished segment is always fsynced **before**
//!   the next segment is created (unless the policy is `Never`), so a
//!   crash can only ever lose a suffix of the newest segment.
//! * The recovery scan accepts the longest prefix of checksum-valid,
//!   decodable frames; a torn or corrupt frame (and everything after
//!   it) is discarded and physically truncated by [`Wal::resume`].

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bao_common::{BaoError, Result};

use crate::frame::{
    decode_frame, decode_segment_header, encode_frame, encode_segment_header, FrameDecode,
    SEGMENT_HEADER_LEN,
};
use crate::record::{RecoveryReport, WalRecord};

/// When the log fsyncs committed bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every commit (strongest, slowest).
    Always,
    /// fsync after every `n` commits (group-commit batching across
    /// waves; `EveryN(1)` behaves like `Always`).
    EveryN(u32),
    /// Never fsync — rely on the OS page cache (fastest; crash safety
    /// limited to process kills, which is what the crash-matrix tests
    /// simulate via truncation).
    Never,
}

/// Durability knob threaded through `BaoConfig` / `BaoSettings` /
/// `baodb --wal-dir`.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding `wal-NNNNNN.seg` files. Created on open; open
    /// refuses a directory that already contains segments (recovery
    /// must go through [`Wal::scan`] + [`Wal::resume`] instead).
    pub dir: PathBuf,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
    /// Target segment size before rotation, in bytes.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// A config with the default rotation size (4 MiB) and group-commit
    /// fsync every 8 commits.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig { dir: dir.into(), fsync: FsyncPolicy::EveryN(8), segment_bytes: 4 << 20 }
    }

    /// Same directory, different fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> DurabilityConfig {
        self.fsync = fsync;
        self
    }

    /// Same directory, different rotation target.
    pub fn with_segment_bytes(mut self, bytes: u64) -> DurabilityConfig {
        self.segment_bytes = bytes.max(SEGMENT_HEADER_LEN as u64 + 1);
        self
    }
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> BaoError {
    BaoError::Io(format!("{ctx} {}: {e}", path.display()))
}

/// `dir/wal-NNNNNN.seg`.
pub fn segment_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

/// List existing segment files in `dir`, sorted by index, verifying the
/// indices are contiguous from zero.
fn list_segments(dir: &Path) -> Result<Vec<(u32, PathBuf)>> {
    let mut segs: Vec<(u32, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segs),
        Err(e) => return Err(io_err("reading wal dir", dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("reading wal dir", dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(".seg")) {
            if let Ok(idx) = stem.parse::<u32>() {
                segs.push((idx, entry.path()));
            }
        }
    }
    segs.sort_by_key(|(i, _)| *i);
    for (pos, (idx, path)) in segs.iter().enumerate() {
        if *idx as usize != pos {
            return Err(BaoError::Parse(format!(
                "wal segment numbering has a gap at {}",
                path.display()
            )));
        }
    }
    Ok(segs)
}

/// One checksum-valid, decoded frame from a recovery scan, with enough
/// position information to truncate the log right after it.
#[derive(Debug, Clone)]
pub struct ScannedFrame {
    /// The decoded record.
    pub record: WalRecord,
    /// Segment index the frame lives in.
    pub seg: u32,
    /// Byte offset within that segment just *past* the frame.
    pub end: u64,
}

/// Result of [`Wal::scan`]: the valid frame prefix plus framing-level
/// recovery telemetry. Call [`WalScan::rollback_to_last_outcome`] to
/// apply commit-record semantics before replaying.
#[derive(Debug, Clone)]
pub struct WalScan {
    /// Valid frames, in log order.
    pub frames: Vec<ScannedFrame>,
    /// Telemetry; census fields are filled by
    /// [`WalScan::rollback_to_last_outcome`].
    pub report: RecoveryReport,
}

impl WalScan {
    /// Discard valid frames that trail the last `QueryOutcome` commit
    /// record (they belong to a query whose commit never made it out),
    /// then fill the report's per-kind census. A log with no outcome at
    /// all keeps only a leading `RunHeader`, if present.
    pub fn rollback_to_last_outcome(&mut self) {
        let keep = self
            .frames
            .iter()
            .rposition(|f| matches!(f.record, WalRecord::QueryOutcome { .. }))
            .map(|i| i + 1)
            .unwrap_or_else(|| {
                usize::from(matches!(
                    self.frames.first().map(|f| &f.record),
                    Some(WalRecord::RunHeader { .. })
                ))
            });
        self.report.frames_rolled_back = (self.frames.len() - keep) as u64;
        self.frames.truncate(keep);
        let r = &mut self.report;
        r.experience_appends = 0;
        r.retrain_boundaries = 0;
        r.model_checkpoints = 0;
        r.cache_invalidations = 0;
        r.query_outcomes = 0;
        for f in &self.frames {
            match f.record {
                WalRecord::ExperienceAppend { .. } => r.experience_appends += 1,
                WalRecord::RetrainBoundary { .. } => r.retrain_boundaries += 1,
                WalRecord::ModelCheckpoint { .. } => r.model_checkpoints += 1,
                WalRecord::CacheInvalidation { .. } => r.cache_invalidations += 1,
                WalRecord::QueryOutcome { .. } => r.query_outcomes += 1,
                WalRecord::RunHeader { .. } => {}
            }
        }
        r.resumed_at_step = r.query_outcomes;
    }
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    cfg: DurabilityConfig,
    file: fs::File,
    seg_index: u32,
    /// Bytes written (committed) into the current segment, header
    /// included.
    seg_bytes: u64,
    /// Encoded frames awaiting the next [`Wal::commit`].
    pending: Vec<u8>,
    commits_since_sync: u32,
    total_frames: u64,
}

impl Wal {
    /// Create a fresh log in `cfg.dir`. Errors if the directory already
    /// contains segments — an existing log must be recovered (scan +
    /// resume) or removed explicitly, never silently overwritten.
    pub fn open(cfg: DurabilityConfig) -> Result<Wal> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("creating wal dir", &cfg.dir, e))?;
        let existing = list_segments(&cfg.dir)?;
        if !existing.is_empty() {
            return Err(BaoError::AlreadyExists(format!(
                "wal dir {} already holds {} segment(s); recover or remove it first",
                cfg.dir.display(),
                existing.len()
            )));
        }
        Wal::create_segment(cfg, 0)
    }

    fn create_segment(cfg: DurabilityConfig, index: u32) -> Result<Wal> {
        let path = segment_path(&cfg.dir, index);
        let mut file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err("creating wal segment", &path, e))?;
        file.write_all(&encode_segment_header())
            .map_err(|e| io_err("writing wal segment header", &path, e))?;
        Ok(Wal {
            cfg,
            file,
            seg_index: index,
            seg_bytes: SEGMENT_HEADER_LEN as u64,
            pending: Vec::new(),
            commits_since_sync: 0,
            total_frames: 0,
        })
    }

    /// Buffer one record for the next commit. Infallible by design: the
    /// hot observation path (`Bao::observe`) cannot surface I/O errors,
    /// so all I/O is deferred to [`Wal::commit`].
    pub fn append(&mut self, record: &WalRecord) {
        encode_frame(&record.encode(), &mut self.pending);
        self.total_frames += 1;
    }

    /// Write all pending frames to the current segment (rotating first
    /// if the segment is full), then fsync per the configured policy.
    pub fn commit(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if self.seg_bytes >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        let path = segment_path(&self.cfg.dir, self.seg_index);
        self.file
            .write_all(&self.pending)
            .map_err(|e| io_err("appending to wal segment", &path, e))?;
        self.seg_bytes += self.pending.len() as u64;
        self.pending.clear();
        self.commits_since_sync += 1;
        let should_sync = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.commits_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if should_sync {
            self.sync()?;
        }
        Ok(())
    }

    /// Force an fsync of the current segment now.
    pub fn sync(&mut self) -> Result<()> {
        let path = segment_path(&self.cfg.dir, self.seg_index);
        self.file.sync_data().map_err(|e| io_err("fsyncing wal segment", &path, e))?;
        self.commits_since_sync = 0;
        Ok(())
    }

    /// Close out the current segment (fsync-before-rotate unless the
    /// policy is `Never`) and start the next one.
    fn rotate(&mut self) -> Result<()> {
        if !matches!(self.cfg.fsync, FsyncPolicy::Never) {
            self.sync()?;
        }
        let next = Wal::create_segment(self.cfg.clone(), self.seg_index + 1)?;
        self.file = next.file;
        self.seg_index = next.seg_index;
        self.seg_bytes = next.seg_bytes;
        Ok(())
    }

    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Index of the segment currently being appended to.
    pub fn segment_index(&self) -> u32 {
        self.seg_index
    }

    /// Bytes buffered but not yet committed.
    pub fn bytes_pending(&self) -> usize {
        self.pending.len()
    }

    /// Total frames appended over this handle's lifetime.
    pub fn frames_appended(&self) -> u64 {
        self.total_frames
    }

    /// Scan `dir` for the longest valid frame prefix. Torn and corrupt
    /// tails stop the scan (never panic) and are reported; frames past
    /// a bad one — including whole later segments — count as truncated.
    pub fn scan(dir: &Path) -> Result<WalScan> {
        let segs = list_segments(dir)?;
        if segs.is_empty() {
            return Err(BaoError::NotFound(format!("no wal segments in {}", dir.display())));
        }
        let mut scan = WalScan { frames: Vec::new(), report: RecoveryReport::default() };
        let mut total_bytes = 0u64;
        let mut stopped = false;
        for (idx, path) in &segs {
            let bytes = fs::read(path).map_err(|e| io_err("reading wal segment", path, e))?;
            total_bytes += bytes.len() as u64;
            if stopped {
                continue; // everything past a bad tail is truncated
            }
            scan.report.segments_scanned += 1;
            if let Err(e) = decode_segment_header(&bytes) {
                if *idx == 0 {
                    return Err(e); // no header ⇒ nothing recoverable
                }
                // A later segment with a mangled header is a torn
                // rotation: keep the prefix, drop this segment.
                scan.report.corrupt_tail = true;
                stopped = true;
                continue;
            }
            scan.report.bytes_valid += SEGMENT_HEADER_LEN as u64;
            let mut off = SEGMENT_HEADER_LEN;
            while off < bytes.len() {
                match decode_frame(&bytes[off..]) {
                    FrameDecode::Complete { payload, consumed } => {
                        match WalRecord::decode(&payload) {
                            Ok(record) => {
                                off += consumed;
                                scan.report.frames_valid += 1;
                                scan.report.bytes_valid += consumed as u64;
                                scan.frames.push(ScannedFrame {
                                    record,
                                    seg: *idx,
                                    end: off as u64,
                                });
                            }
                            Err(_) => {
                                // Checksum fine but payload undecodable:
                                // treat as corruption, stop here.
                                scan.report.corrupt_tail = true;
                                stopped = true;
                                break;
                            }
                        }
                    }
                    FrameDecode::Incomplete => {
                        scan.report.torn_tail = true;
                        stopped = true;
                        break;
                    }
                    FrameDecode::Corrupt { .. } => {
                        scan.report.corrupt_tail = true;
                        stopped = true;
                        break;
                    }
                }
            }
        }
        scan.report.bytes_truncated = total_bytes - scan.report.bytes_valid;
        Ok(scan)
    }

    /// Physically truncate the on-disk log to the committed prefix in
    /// `scan` (whose rollback must already have been applied) and
    /// reopen it for appending. An empty prefix wipes the directory and
    /// starts a fresh log.
    pub fn resume(cfg: DurabilityConfig, scan: &WalScan) -> Result<Wal> {
        let segs = list_segments(&cfg.dir)?;
        let last = match scan.frames.last() {
            Some(f) => f.clone(),
            None => {
                for (_, path) in &segs {
                    fs::remove_file(path).map_err(|e| io_err("removing wal segment", path, e))?;
                }
                return Wal::open(cfg);
            }
        };
        for (idx, path) in &segs {
            if *idx > last.seg {
                fs::remove_file(path).map_err(|e| io_err("removing wal segment", path, e))?;
            }
        }
        let path = segment_path(&cfg.dir, last.seg);
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("reopening wal segment", &path, e))?;
        file.set_len(last.end).map_err(|e| io_err("truncating wal segment", &path, e))?;
        file.sync_data().map_err(|e| io_err("fsyncing wal segment", &path, e))?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err("seeking wal segment", &path, e))?;
        Ok(Wal {
            cfg,
            file,
            seg_index: last.seg,
            seg_bytes: last.end,
            pending: Vec::new(),
            commits_since_sync: 0,
            total_frames: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bao_common::json::{Json, ToJson};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bao-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn outcome(i: u64) -> WalRecord {
        WalRecord::QueryOutcome { record: Json::obj([("idx", i.to_json())]) }
    }

    #[test]
    fn append_commit_scan_round_trip() {
        let dir = temp_dir("roundtrip");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let mut wal = Wal::open(cfg.clone()).unwrap();
        wal.append(&WalRecord::RunHeader { seed: 9, config_fp: 1 });
        for i in 0..5 {
            wal.append(&WalRecord::ExperienceAppend {
                step: i,
                tree: bao_nn::FeatTree::new(2, vec![vec![1.0, 2.0]], vec![-1], vec![-1]),
                perf: i as f64 * 0.5,
            });
            wal.append(&outcome(i));
            wal.commit().unwrap();
        }
        let mut scan = Wal::scan(&dir).unwrap();
        assert_eq!(scan.report.frames_valid, 11);
        assert!(!scan.report.torn_tail && !scan.report.corrupt_tail);
        assert_eq!(scan.report.bytes_truncated, 0);
        scan.rollback_to_last_outcome();
        assert_eq!(scan.report.frames_rolled_back, 0);
        assert_eq!(scan.report.query_outcomes, 5);
        assert_eq!(scan.report.resumed_at_step, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_refuses_existing_log() {
        let dir = temp_dir("refuse");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let mut wal = Wal::open(cfg.clone()).unwrap();
        wal.append(&outcome(0));
        wal.commit().unwrap();
        drop(wal);
        assert!(matches!(Wal::open(cfg), Err(BaoError::AlreadyExists(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_scan_reads_across() {
        let dir = temp_dir("rotate");
        let cfg = DurabilityConfig::new(&dir)
            .with_fsync(FsyncPolicy::Never)
            .with_segment_bytes(64);
        let mut wal = Wal::open(cfg.clone()).unwrap();
        for i in 0..20 {
            wal.append(&outcome(i));
            wal.commit().unwrap();
        }
        assert!(wal.segment_index() > 0, "expected rotation past segment 0");
        let scan = Wal::scan(&dir).unwrap();
        assert_eq!(scan.report.frames_valid, 20);
        assert_eq!(scan.report.segments_scanned as u32, wal.segment_index() + 1);
        assert_eq!(scan.report.bytes_truncated, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_resume_truncates_it() {
        let dir = temp_dir("torn");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let mut wal = Wal::open(cfg.clone()).unwrap();
        wal.append(&WalRecord::RunHeader { seed: 1, config_fp: 2 });
        for i in 0..3 {
            wal.append(&outcome(i));
        }
        wal.commit().unwrap();
        drop(wal);
        // Tear the last frame: chop 3 bytes off the segment.
        let path = segment_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let mut scan = Wal::scan(&dir).unwrap();
        assert!(scan.report.torn_tail);
        assert_eq!(scan.report.frames_valid, 3); // header + 2 whole outcomes
        assert_eq!(scan.report.bytes_truncated, (len - 3) - scan.report.bytes_valid);
        scan.rollback_to_last_outcome();
        assert_eq!(scan.report.query_outcomes, 2);
        let mut wal = Wal::resume(cfg, &scan).unwrap();
        wal.append(&outcome(99));
        wal.commit().unwrap();
        // After resume + append, the log is clean again.
        let rescan = Wal::scan(&dir).unwrap();
        assert!(!rescan.report.torn_tail && !rescan.report.corrupt_tail);
        assert_eq!(rescan.report.frames_valid, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_stops_scan_without_panic() {
        let dir = temp_dir("corrupt");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let mut wal = Wal::open(cfg).unwrap();
        for i in 0..4 {
            wal.append(&outcome(i));
        }
        wal.commit().unwrap();
        drop(wal);
        // Flip a bit in the third frame's payload.
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let mut off = SEGMENT_HEADER_LEN;
        for _ in 0..2 {
            if let FrameDecode::Complete { consumed, .. } = decode_frame(&bytes[off..]) {
                off += consumed;
            }
        }
        bytes[off + 6] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let scan = Wal::scan(&dir).unwrap();
        assert!(scan.report.corrupt_tail);
        assert!(!scan.report.torn_tail);
        assert_eq!(scan.report.frames_valid, 2);
        // Frames past the corruption are never surfaced, even though
        // frame 4 is intact on disk.
        assert_eq!(scan.frames.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_discards_uncommitted_suffix() {
        let dir = temp_dir("rollback");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let mut wal = Wal::open(cfg.clone()).unwrap();
        wal.append(&WalRecord::RunHeader { seed: 5, config_fp: 5 });
        wal.append(&outcome(0));
        // Experience + retrain for query 1 land, but its outcome never
        // commits — the crash window between observe and commit.
        wal.append(&WalRecord::ExperienceAppend {
            step: 1,
            tree: bao_nn::FeatTree::new(2, vec![vec![0.0, 1.0]], vec![-1], vec![-1]),
            perf: 2.0,
        });
        wal.append(&WalRecord::RetrainBoundary { version: 1, experience_size: 2 });
        wal.commit().unwrap();
        drop(wal);
        let mut scan = Wal::scan(&dir).unwrap();
        scan.rollback_to_last_outcome();
        assert_eq!(scan.report.frames_rolled_back, 2);
        assert_eq!(scan.report.query_outcomes, 1);
        assert_eq!(scan.report.experience_appends, 0);
        assert_eq!(scan.report.retrain_boundaries, 0);
        let wal = Wal::resume(cfg, &scan).unwrap();
        drop(wal);
        let rescan = Wal::scan(&dir).unwrap();
        assert_eq!(rescan.report.frames_valid, 2); // header + outcome 0
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_empty_prefix_starts_fresh() {
        let dir = temp_dir("fresh");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let mut wal = Wal::open(cfg.clone()).unwrap();
        wal.append(&WalRecord::RunHeader { seed: 3, config_fp: 3 });
        wal.commit().unwrap();
        drop(wal);
        // Tear the header frame itself: nothing valid survives.
        let path = segment_path(&dir, 0);
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(SEGMENT_HEADER_LEN as u64 + 2).unwrap();
        drop(f);
        let mut scan = Wal::scan(&dir).unwrap();
        assert!(scan.report.torn_tail);
        scan.rollback_to_last_outcome();
        assert!(scan.frames.is_empty());
        let mut wal = Wal::resume(cfg, &scan).unwrap();
        wal.append(&outcome(0));
        wal.commit().unwrap();
        let rescan = Wal::scan(&dir).unwrap();
        assert_eq!(rescan.report.frames_valid, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
