//! Logical WAL records and the recovery telemetry report.
//!
//! Every frame payload is the JSON encoding of one [`WalRecord`], tagged
//! by a `"kind"` field. JSON keeps the framing layer dumb (bytes in,
//! bytes out) while reusing the workspace's exact-round-trip number
//! lanes — an f32 weight checkpoint survives the log byte-for-byte,
//! which is what makes bit-identical recovery possible at all.

use bao_common::json::{self, FromJson, Json, ToJson};
use bao_common::{BaoError, Result};
use bao_nn::FeatTree;

/// One logical WAL record. The write order per query is:
/// `ExperienceAppend` → (`ModelCheckpoint` → `RetrainBoundary`, on a
/// retrain boundary) → `QueryOutcome`. The `QueryOutcome` is the commit
/// record: recovery rolls back any trailing records past the last one.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// First frame of every log: the run's seed and a fingerprint of the
    /// durability-independent run configuration, so recovery refuses to
    /// replay a log against a different workload setup.
    RunHeader { seed: u64, config_fp: u64 },
    /// One (plan-tree, reward) pair entering the experience window.
    /// `step` is the 0-based observation counter.
    ExperienceAppend { step: u64, tree: FeatTree, perf: f64 },
    /// A retrain completed; `version` is the post-increment model-version
    /// counter and `experience_size` the window size it trained on.
    RetrainBoundary { version: u64, experience_size: u64 },
    /// Full model weight snapshot (the model's own JSON serialization)
    /// keyed by the model-version counter it produced.
    ModelCheckpoint { version: u64, model: String },
    /// A plan-cache entry was dropped (eviction or drift shed) while
    /// model `version` was live.
    CacheInvalidation { version: u64, reason: String },
    /// The per-query commit record: the harness's full `QueryRecord`
    /// JSON, opaque to this crate.
    QueryOutcome { record: Json },
}

impl WalRecord {
    /// The `"kind"` tag this record serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::RunHeader { .. } => "run_header",
            WalRecord::ExperienceAppend { .. } => "experience",
            WalRecord::RetrainBoundary { .. } => "retrain",
            WalRecord::ModelCheckpoint { .. } => "checkpoint",
            WalRecord::CacheInvalidation { .. } => "invalidation",
            WalRecord::QueryOutcome { .. } => "outcome",
        }
    }

    /// Encode to the frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().to_string().into_bytes()
    }

    /// Decode from frame payload bytes; graceful `Err` on anything that
    /// is not a well-formed record.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| BaoError::Parse("wal record payload is not UTF-8".into()))?;
        WalRecord::from_json(&json::parse(text)?)
    }
}

impl ToJson for WalRecord {
    fn to_json(&self) -> Json {
        match self {
            WalRecord::RunHeader { seed, config_fp } => Json::obj([
                ("kind", Json::Str(self.kind().into())),
                ("seed", seed.to_json()),
                ("config_fp", config_fp.to_json()),
            ]),
            WalRecord::ExperienceAppend { step, tree, perf } => Json::obj([
                ("kind", Json::Str(self.kind().into())),
                ("step", step.to_json()),
                ("tree", tree.to_json()),
                ("perf", perf.to_json()),
            ]),
            WalRecord::RetrainBoundary { version, experience_size } => Json::obj([
                ("kind", Json::Str(self.kind().into())),
                ("version", version.to_json()),
                ("experience_size", experience_size.to_json()),
            ]),
            WalRecord::ModelCheckpoint { version, model } => Json::obj([
                ("kind", Json::Str(self.kind().into())),
                ("version", version.to_json()),
                ("model", model.to_json()),
            ]),
            WalRecord::CacheInvalidation { version, reason } => Json::obj([
                ("kind", Json::Str(self.kind().into())),
                ("version", version.to_json()),
                ("reason", reason.to_json()),
            ]),
            WalRecord::QueryOutcome { record } => Json::obj([
                ("kind", Json::Str(self.kind().into())),
                ("record", record.clone()),
            ]),
        }
    }
}

impl FromJson for WalRecord {
    fn from_json(j: &Json) -> Result<WalRecord> {
        let kind: String = json::field(j, "kind")?;
        match kind.as_str() {
            "run_header" => Ok(WalRecord::RunHeader {
                seed: json::field(j, "seed")?,
                config_fp: json::field(j, "config_fp")?,
            }),
            "experience" => Ok(WalRecord::ExperienceAppend {
                step: json::field(j, "step")?,
                tree: json::field(j, "tree")?,
                perf: json::field(j, "perf")?,
            }),
            "retrain" => Ok(WalRecord::RetrainBoundary {
                version: json::field(j, "version")?,
                experience_size: json::field(j, "experience_size")?,
            }),
            "checkpoint" => Ok(WalRecord::ModelCheckpoint {
                version: json::field(j, "version")?,
                model: json::field(j, "model")?,
            }),
            "invalidation" => Ok(WalRecord::CacheInvalidation {
                version: json::field(j, "version")?,
                reason: json::field(j, "reason")?,
            }),
            "outcome" => Ok(WalRecord::QueryOutcome { record: json::field(j, "record")? }),
            other => Err(BaoError::Parse(format!("unknown wal record kind {other:?}"))),
        }
    }
}

/// What a recovery scan found: how much of the log was valid, how the
/// tail ended, and the per-kind record census. Serialized into test
/// artifacts and the `baodb` shell's recovery banner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Segment files visited, in order.
    pub segments_scanned: u64,
    /// Checksum-valid, decodable frames accepted.
    pub frames_valid: u64,
    /// Bytes of the log (headers + frames) that survived validation.
    pub bytes_valid: u64,
    /// Bytes discarded past the valid prefix (torn/corrupt tail).
    pub bytes_truncated: u64,
    /// The scan ended on an incomplete (torn) frame.
    pub torn_tail: bool,
    /// The scan ended on a checksum-failing or undecodable frame.
    pub corrupt_tail: bool,
    /// Valid frames discarded because they trail the last commit record.
    pub frames_rolled_back: u64,
    /// Census of replayable records, by kind.
    pub experience_appends: u64,
    pub retrain_boundaries: u64,
    pub model_checkpoints: u64,
    pub cache_invalidations: u64,
    pub query_outcomes: u64,
    /// The workload step the recovered run resumes at (= committed
    /// query outcomes).
    pub resumed_at_step: u64,
}

impl ToJson for RecoveryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("segments_scanned", self.segments_scanned.to_json()),
            ("frames_valid", self.frames_valid.to_json()),
            ("bytes_valid", self.bytes_valid.to_json()),
            ("bytes_truncated", self.bytes_truncated.to_json()),
            ("torn_tail", self.torn_tail.to_json()),
            ("corrupt_tail", self.corrupt_tail.to_json()),
            ("frames_rolled_back", self.frames_rolled_back.to_json()),
            ("experience_appends", self.experience_appends.to_json()),
            ("retrain_boundaries", self.retrain_boundaries.to_json()),
            ("model_checkpoints", self.model_checkpoints.to_json()),
            ("cache_invalidations", self.cache_invalidations.to_json()),
            ("query_outcomes", self.query_outcomes.to_json()),
            ("resumed_at_step", self.resumed_at_step.to_json()),
        ])
    }
}

impl FromJson for RecoveryReport {
    fn from_json(j: &Json) -> Result<RecoveryReport> {
        Ok(RecoveryReport {
            segments_scanned: json::field(j, "segments_scanned")?,
            frames_valid: json::field(j, "frames_valid")?,
            bytes_valid: json::field(j, "bytes_valid")?,
            bytes_truncated: json::field(j, "bytes_truncated")?,
            torn_tail: json::field(j, "torn_tail")?,
            corrupt_tail: json::field(j, "corrupt_tail")?,
            frames_rolled_back: json::field(j, "frames_rolled_back")?,
            experience_appends: json::field(j, "experience_appends")?,
            retrain_boundaries: json::field(j, "retrain_boundaries")?,
            model_checkpoints: json::field(j, "model_checkpoints")?,
            cache_invalidations: json::field(j, "cache_invalidations")?,
            query_outcomes: json::field(j, "query_outcomes")?,
            resumed_at_step: json::field(j, "resumed_at_step")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> FeatTree {
        FeatTree::new(
            3,
            vec![vec![0.5, 1.0, 0.25], vec![1.5, 0.0, 0.125]],
            vec![1, -1],
            vec![-1, -1],
        )
    }

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::RunHeader { seed: 42, config_fp: 0xDEAD_BEEF_CAFE },
            WalRecord::ExperienceAppend { step: 7, tree: sample_tree(), perf: 12.3456789 },
            WalRecord::RetrainBoundary { version: 2, experience_size: 100 },
            WalRecord::ModelCheckpoint { version: 2, model: "{\"weights\":[1.5]}".into() },
            WalRecord::CacheInvalidation { version: 2, reason: "drift_shed".into() },
            WalRecord::QueryOutcome {
                record: Json::obj([("idx", 3u64.to_json()), ("perf", 1.25f64.to_json())]),
            },
        ]
    }

    #[test]
    fn record_json_round_trip() {
        for rec in samples() {
            let bytes = rec.encode();
            let back = WalRecord::decode(&bytes).unwrap();
            assert_eq!(rec, back, "round trip for kind {:?}", rec.kind());
            // And the JSON text itself is stable across a second pass.
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn decode_rejects_garbage_gracefully() {
        assert!(WalRecord::decode(b"\xFF\xFE not utf8").is_err());
        assert!(WalRecord::decode(b"not json").is_err());
        assert!(WalRecord::decode(b"{\"kind\":\"martian\"}").is_err());
        assert!(WalRecord::decode(b"{\"no_kind\":1}").is_err());
        // Trailing garbage after a valid JSON document is a parse error
        // (the workspace parser rejects it), not a silent accept.
        assert!(WalRecord::decode(b"{\"kind\":\"retrain\",\"version\":1,\"experience_size\":2} x").is_err());
        // Right kind, missing field.
        assert!(WalRecord::decode(b"{\"kind\":\"checkpoint\",\"version\":1}").is_err());
    }

    #[test]
    fn recovery_report_round_trip() {
        let r = RecoveryReport {
            segments_scanned: 3,
            frames_valid: 41,
            bytes_valid: 9001,
            bytes_truncated: 17,
            torn_tail: true,
            corrupt_tail: false,
            frames_rolled_back: 2,
            experience_appends: 12,
            retrain_boundaries: 2,
            model_checkpoints: 2,
            cache_invalidations: 1,
            query_outcomes: 12,
            resumed_at_step: 12,
        };
        let back = RecoveryReport::from_json(&bao_common::json::parse(&r.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn perf_round_trips_exactly() {
        // The f64 lane must preserve awkward values bit-for-bit.
        for perf in [1.0 / 3.0, 1e-300, 123456789.123456789, f64::MIN_POSITIVE] {
            let rec = WalRecord::ExperienceAppend { step: 0, tree: sample_tree(), perf };
            match WalRecord::decode(&rec.encode()).unwrap() {
                WalRecord::ExperienceAppend { perf: p, .. } => {
                    assert_eq!(p.to_bits(), perf.to_bits());
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
