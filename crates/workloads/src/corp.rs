//! Corp-like dataset: a dashboard star schema with a mid-workload
//! **schema change** — "half way through the month, the corporation
//! normalized a large fact table ... queries after the 1000th expect the
//! new normalized schema. The data remains static." (paper §6.1.)

use crate::{Event, Workload, WorkloadStep};
use bao_common::{rng_from_seed, split_seed, Result};
use bao_plan::{AggFunc, CmpOp, ColRef, JoinPred, Predicate, Query, SelectItem, TableRef};
use bao_storage::{ColumnDef, Database, DataType, Schema, Table, Value};
use bao_common::{Rng, Xoshiro256};

/// Corp workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct CorpConfig {
    /// 1.0 ≈ 80k fact rows, 5k accounts, 200 product dims.
    pub scale: f64,
    pub n_queries: usize,
    pub seed: u64,
}

impl Default for CorpConfig {
    fn default() -> Self {
        CorpConfig { scale: 1.0, n_queries: 400, seed: 44 }
    }
}

const N_REGIONS: i64 = 8;
const N_CATEGORIES: i64 = 25;
const N_QUARTERS: i64 = 8;

fn n_fact(scale: f64) -> i64 {
    (80_000.0 * scale).max(2_000.0) as i64
}

fn n_dims(scale: f64) -> i64 {
    (200.0 * scale).max(40.0) as i64
}

fn n_accounts(scale: f64) -> i64 {
    (5_000.0 * scale).max(100.0) as i64
}

/// Build the pre-normalization database: a wide fact table (region and
/// category denormalized onto every row) plus accounts.
pub fn build_corp_database(scale: f64, seed: u64) -> Result<Database> {
    let mut rng = rng_from_seed(split_seed(seed, 0));
    let dims = n_dims(scale);
    let accounts_n = n_accounts(scale);

    // Dimension attributes live implicitly in the wide fact: dim_key k
    // always maps to one (region, category) pair, and categories cluster
    // within regions (correlation the independence assumption misses).
    let dim_region: Vec<i64> = (0..dims).map(|k| k % N_REGIONS).collect();
    let dim_category: Vec<i64> = (0..dims)
        .map(|k| ((k % N_REGIONS) * 3 + (k / N_REGIONS) % 5) % N_CATEGORIES)
        .collect();

    // Facts are id-clustered by quarter (low ids = quarter 0), and
    // `ship_quarter` is redundant with `quarter` — the independence
    // assumption underestimates quarter-pair conjunctions 8x. Detail rows
    // (below) Zipf-concentrate on low fact ids, so early-quarter filters
    // select exactly the facts with the most detail partners.
    let facts_n = n_fact(scale);
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("account_id", DataType::Int),
            ColumnDef::new("dim_key", DataType::Int),
            ColumnDef::new("region", DataType::Int),
            ColumnDef::new("category", DataType::Int),
            ColumnDef::new("quarter", DataType::Int),
            ColumnDef::new("ship_quarter", DataType::Int),
            ColumnDef::new("amount", DataType::Int),
        ]),
    );
    for i in 0..facts_n {
        let u: f64 = rng.gen_f64();
        let k = ((u * u) * dims as f64) as i64; // skewed product mix
        let quarter = (i * N_QUARTERS / facts_n.max(1)).min(N_QUARTERS - 1);
        let ship = if rng.gen_bool(0.9) { quarter } else { (quarter + 1) % N_QUARTERS };
        fact.insert(vec![
            Value::Int(i),
            Value::Int(rng.gen_range(0..accounts_n)),
            Value::Int(k),
            Value::Int(dim_region[k as usize]),
            Value::Int(dim_category[k as usize]),
            Value::Int(quarter),
            Value::Int(ship),
            Value::Int(rng.gen_range(1..=10_000)),
        ])?;
    }

    // Order-line-style child table, Zipf-skewed toward low fact ids.
    let mut fact_detail = Table::new(
        "fact_detail",
        Schema::new(vec![
            ColumnDef::new("fact_id", DataType::Int),
            ColumnDef::new("qty", DataType::Int),
            ColumnDef::new("kind", DataType::Int),
        ]),
    );
    for _ in 0..(facts_n * 3) {
        let u: f64 = rng.gen_f64();
        fact_detail.insert(vec![
            Value::Int(((u * u) * facts_n as f64) as i64),
            Value::Int(rng.gen_range(1..=100)),
            Value::Int(rng.gen_range(1..=9)),
        ])?;
    }

    let mut accounts = Table::new(
        "accounts",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("segment", DataType::Int),
        ]),
    );
    for i in 0..accounts_n {
        accounts.insert(vec![Value::Int(i), Value::Int(rng.gen_range(1..=6))])?;
    }

    let mut db = Database::new();
    db.create_table(fact)?;
    db.create_table(fact_detail)?;
    db.create_table(accounts)?;
    for (t, c) in [
        ("fact", "id"),
        ("fact", "account_id"),
        ("fact", "dim_key"),
        ("fact", "region"),
        ("fact", "quarter"),
        ("fact_detail", "fact_id"),
        ("accounts", "id"),
    ] {
        db.create_index(t, c)?;
    }
    Ok(db)
}

/// Apply the schema change: materialize `dim` and `fact_n` from the wide
/// `fact`, then drop it. Same data, normalized shape.
pub fn normalize_fact_table(db: &mut Database) -> Result<()> {
    let fact = &db.by_name("fact")?.table;
    let n = fact.row_count();
    let col = |name: &str| fact.column(name).cloned();
    let (ids, accs, keys, regions, cats, quarters, ships, amounts) = (
        col("id")?,
        col("account_id")?,
        col("dim_key")?,
        col("region")?,
        col("category")?,
        col("quarter")?,
        col("ship_quarter")?,
        col("amount")?,
    );

    let mut dim = Table::new(
        "dim",
        Schema::new(vec![
            ColumnDef::new("dim_key", DataType::Int),
            ColumnDef::new("region", DataType::Int),
            ColumnDef::new("category", DataType::Int),
        ]),
    );
    let mut seen = std::collections::BTreeMap::new();
    for r in 0..n {
        seen.entry(keys.key_at(r).unwrap())
            .or_insert((regions.key_at(r).unwrap(), cats.key_at(r).unwrap()));
    }
    for (k, (reg, cat)) in seen {
        dim.insert(vec![Value::Int(k), Value::Int(reg), Value::Int(cat)])?;
    }

    let mut fact_n = Table::new(
        "fact_n",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("account_id", DataType::Int),
            ColumnDef::new("dim_key", DataType::Int),
            ColumnDef::new("quarter", DataType::Int),
            ColumnDef::new("ship_quarter", DataType::Int),
            ColumnDef::new("amount", DataType::Int),
        ]),
    );
    for r in 0..n {
        fact_n.insert(vec![
            Value::Int(ids.key_at(r).unwrap()),
            Value::Int(accs.key_at(r).unwrap()),
            Value::Int(keys.key_at(r).unwrap()),
            Value::Int(quarters.key_at(r).unwrap()),
            Value::Int(ships.key_at(r).unwrap()),
            Value::Int(amounts.key_at(r).unwrap()),
        ])?;
    }

    db.drop_table("fact")?;
    db.create_table(dim)?;
    db.create_table(fact_n)?;
    for (t, c) in [
        ("dim", "dim_key"),
        ("dim", "region"),
        ("fact_n", "id"),
        ("fact_n", "account_id"),
        ("fact_n", "dim_key"),
        ("fact_n", "quarter"),
    ] {
        db.create_index(t, c)?;
    }
    Ok(())
}

fn pred(table: usize, col: &str, op: CmpOp, v: i64) -> Predicate {
    Predicate::new(ColRef::new(table, col), op, Value::Int(v))
}

fn join(l: (usize, &str), r: (usize, &str)) -> JoinPred {
    JoinPred::new(ColRef::new(l.0, l.1), ColRef::new(r.0, r.1))
}

/// Number of dashboard templates per era (weighted sampling in
/// `build_corp` draws trap templates more often).
pub const N_TEMPLATES: usize = 5;

/// Dashboard query against the *wide* schema.
fn instantiate_pre(t: usize, rng: &mut Xoshiro256) -> (String, Query) {
    let label = format!("corp/wide{t}");
    let q = match t {
        0 => Query {
            tables: vec![TableRef::aliased("fact", "f")],
            select: vec![SelectItem::Agg(AggFunc::Sum(ColRef::new(0, "amount")))],
            predicates: vec![
                pred(0, "region", CmpOp::Eq, rng.gen_range(0..N_REGIONS)),
                pred(0, "quarter", CmpOp::Eq, rng.gen_range(0..N_QUARTERS)),
            ],
            ..Default::default()
        },
        1 => Query {
            tables: vec![TableRef::aliased("fact", "f"), TableRef::aliased("accounts", "a")],
            select: vec![SelectItem::Agg(AggFunc::CountStar)],
            predicates: vec![
                pred(1, "segment", CmpOp::Eq, rng.gen_range(1..=6)),
                pred(0, "category", CmpOp::Eq, rng.gen_range(0..N_CATEGORIES)),
            ],
            joins: vec![join((0, "account_id"), (1, "id"))],
            ..Default::default()
        },
        // The trap template: `quarter = ship_quarter = Q` is redundant
        // (underestimated 8x) and early quarters hold the detail-heavy
        // low-id facts, so the parameterized nested loop into fact_detail
        // the default optimizer picks is far slower than a hash join.
        2 => {
            let q = rng.gen_range(0..2);
            Query {
                tables: vec![
                    TableRef::aliased("fact", "f"),
                    TableRef::aliased("fact_detail", "fd"),
                ],
                select: vec![SelectItem::Agg(AggFunc::CountStar)],
                predicates: vec![
                    pred(0, "quarter", CmpOp::Eq, q),
                    pred(0, "ship_quarter", CmpOp::Eq, q),
                    pred(0, "region", CmpOp::Eq, rng.gen_range(0..N_REGIONS)),
                    pred(1, "qty", CmpOp::Ge, rng.gen_range(5..=40)),
                ],
                joins: vec![join((0, "id"), (1, "fact_id"))],
                ..Default::default()
            }
        }
        3 => Query {
            tables: vec![TableRef::aliased("fact", "f")],
            select: vec![
                SelectItem::Column(ColRef::new(0, "quarter")),
                SelectItem::Agg(AggFunc::Avg(ColRef::new(0, "amount"))),
            ],
            predicates: vec![pred(0, "region", CmpOp::Eq, rng.gen_range(0..N_REGIONS))],
            group_by: vec![ColRef::new(0, "quarter")],
            ..Default::default()
        },
        // Ultra-popular probe: the lowest fact ids carry most detail rows.
        _ => Query {
            tables: vec![
                TableRef::aliased("fact", "f"),
                TableRef::aliased("fact_detail", "fd"),
            ],
            select: vec![SelectItem::Agg(AggFunc::CountStar)],
            predicates: vec![
                pred(0, "id", CmpOp::Le, rng.gen_range(10..=40)),
                pred(1, "qty", CmpOp::Ge, rng.gen_range(5..=30)),
            ],
            joins: vec![join((0, "id"), (1, "fact_id"))],
            ..Default::default()
        },
    };
    (label, q)
}

/// The same dashboards against the *normalized* schema.
fn instantiate_post(t: usize, rng: &mut Xoshiro256) -> (String, Query) {
    let label = format!("corp/norm{t}");
    let q = match t {
        0 => Query {
            tables: vec![TableRef::aliased("fact_n", "f"), TableRef::aliased("dim", "d")],
            select: vec![SelectItem::Agg(AggFunc::Sum(ColRef::new(0, "amount")))],
            predicates: vec![
                pred(1, "region", CmpOp::Eq, rng.gen_range(0..N_REGIONS)),
                pred(0, "quarter", CmpOp::Eq, rng.gen_range(0..N_QUARTERS)),
            ],
            joins: vec![join((0, "dim_key"), (1, "dim_key"))],
            ..Default::default()
        },
        1 => Query {
            tables: vec![
                TableRef::aliased("fact_n", "f"),
                TableRef::aliased("dim", "d"),
                TableRef::aliased("accounts", "a"),
            ],
            select: vec![SelectItem::Agg(AggFunc::CountStar)],
            predicates: vec![
                pred(2, "segment", CmpOp::Eq, rng.gen_range(1..=6)),
                pred(1, "category", CmpOp::Eq, rng.gen_range(0..N_CATEGORIES)),
            ],
            joins: vec![
                join((0, "dim_key"), (1, "dim_key")),
                join((0, "account_id"), (2, "id")),
            ],
            ..Default::default()
        },
        // Same trap against the normalized schema.
        2 => {
            let q = rng.gen_range(0..2);
            Query {
                tables: vec![
                    TableRef::aliased("fact_n", "f"),
                    TableRef::aliased("fact_detail", "fd"),
                ],
                select: vec![SelectItem::Agg(AggFunc::CountStar)],
                predicates: vec![
                    pred(0, "quarter", CmpOp::Eq, q),
                    pred(0, "ship_quarter", CmpOp::Eq, q),
                    pred(1, "qty", CmpOp::Ge, rng.gen_range(5..=40)),
                ],
                joins: vec![join((0, "id"), (1, "fact_id"))],
                ..Default::default()
            }
        }
        3 => Query {
            tables: vec![TableRef::aliased("fact_n", "f"), TableRef::aliased("dim", "d")],
            select: vec![
                SelectItem::Column(ColRef::new(0, "quarter")),
                SelectItem::Agg(AggFunc::Avg(ColRef::new(0, "amount"))),
            ],
            predicates: vec![pred(1, "region", CmpOp::Eq, rng.gen_range(0..N_REGIONS))],
            joins: vec![join((0, "dim_key"), (1, "dim_key"))],
            group_by: vec![ColRef::new(0, "quarter")],
            ..Default::default()
        },
        // Ultra-popular probe against the normalized schema.
        _ => Query {
            tables: vec![
                TableRef::aliased("fact_n", "f"),
                TableRef::aliased("fact_detail", "fd"),
            ],
            select: vec![SelectItem::Agg(AggFunc::CountStar)],
            predicates: vec![
                pred(0, "id", CmpOp::Le, rng.gen_range(10..=40)),
                pred(1, "qty", CmpOp::Ge, rng.gen_range(5..=30)),
            ],
            joins: vec![join((0, "id"), (1, "fact_id"))],
            ..Default::default()
        },
    };
    (label, q)
}

/// Build the Corp database plus a workload that flips schema at the
/// midpoint.
pub fn build_corp(cfg: &CorpConfig) -> Result<(Database, Workload)> {
    let db = build_corp_database(cfg.scale, cfg.seed)?;
    let flip = cfg.n_queries / 2;
    let mut steps = Vec::with_capacity(cfg.n_queries);
    for i in 0..cfg.n_queries {
        let mut rng = rng_from_seed(split_seed(cfg.seed, 40_000 + i as u64));
        // Dashboards re-run the same problematic reports: the detail-join
        // templates (2 and 4) carry extra weight, mirroring the paper's
        // Corp workload where 80% of execution time came from ~20% of
        // queries.
        const WEIGHTED: [usize; 8] = [0, 1, 2, 2, 3, 4, 4, 2];
        let t = WEIGHTED[rng.gen_range(0..WEIGHTED.len())];
        let (label, query) =
            if i < flip { instantiate_pre(t, &mut rng) } else { instantiate_post(t, &mut rng) };
        let event = (i == flip).then_some(Event::CorpNormalization);
        steps.push(WorkloadStep { label, query, event });
    }
    Ok((db, Workload { name: "corp".into(), steps }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_event;

    #[test]
    fn wide_schema_builds() {
        let db = build_corp_database(0.05, 1).unwrap();
        assert_eq!(db.table_names(), vec!["fact", "fact_detail", "accounts"]);
        assert_eq!(db.by_name("fact").unwrap().table.row_count(), 4_000);
    }

    #[test]
    fn region_category_correlated() {
        let db = build_corp_database(0.05, 2).unwrap();
        let f = &db.by_name("fact").unwrap().table;
        let reg = f.column("region").unwrap();
        let cat = f.column("category").unwrap();
        // given region r, only ~5 categories occur (not all 25)
        let mut cats_in_region0 = std::collections::HashSet::new();
        for r in 0..f.row_count() {
            if reg.key_at(r) == Some(0) {
                cats_in_region0.insert(cat.key_at(r).unwrap());
            }
        }
        assert!(cats_in_region0.len() <= 6, "{cats_in_region0:?}");
    }

    #[test]
    fn normalization_preserves_data() {
        let mut db = build_corp_database(0.05, 3).unwrap();
        let f = &db.by_name("fact").unwrap().table;
        let total_amount: i64 = {
            let a = f.column("amount").unwrap();
            (0..f.row_count()).map(|r| a.key_at(r).unwrap()).sum()
        };
        let rows = f.row_count();
        apply_event(&mut db, &Event::CorpNormalization, 3).unwrap();
        assert!(db.by_name("fact").is_err(), "wide fact dropped");
        let fnorm = &db.by_name("fact_n").unwrap().table;
        assert_eq!(fnorm.row_count(), rows);
        let a = fnorm.column("amount").unwrap();
        let total2: i64 = (0..rows).map(|r| a.key_at(r).unwrap()).sum();
        assert_eq!(total_amount, total2);
        // dim holds each key once with consistent attributes
        let dim = &db.by_name("dim").unwrap().table;
        assert!(dim.row_count() <= n_dims(0.05) as usize);
        assert!(db.by_name("dim").unwrap().index_on("dim_key").is_some());
    }

    #[test]
    fn workload_flips_schema_at_midpoint() {
        let cfg = CorpConfig { scale: 0.05, n_queries: 40, seed: 4 };
        let (_, wl) = build_corp(&cfg).unwrap();
        assert_eq!(wl.n_events(), 1);
        assert!(wl.steps[20].event == Some(Event::CorpNormalization));
        for (i, s) in wl.steps.iter().enumerate() {
            let uses_wide = s.query.tables.iter().any(|t| t.table == "fact");
            assert_eq!(uses_wide, i < 20, "step {i} schema mismatch");
        }
    }

    #[test]
    fn wide_and_norm_templates_agree_semantically() {
        // SUM(amount) filtered by region+quarter must be identical across
        // the two schemas (the data is the same).
        use bao_exec::{execute, ChargeRates};
        use bao_opt::{HintSet, Optimizer};
        use bao_stats::StatsCatalog;
        use bao_storage::BufferPool;

        let mut db = build_corp_database(0.05, 5).unwrap();
        let mut rng = rng_from_seed(9);
        let (_, q_wide) = instantiate_pre(0, &mut rng);
        let mut rng = rng_from_seed(9);
        let (_, q_norm) = instantiate_post(0, &mut rng);

        let opt = Optimizer::postgres();
        let rates = ChargeRates::default();

        let cat = StatsCatalog::analyze(&db, 500, 1);
        let plan = opt.plan(&q_wide, &db, &cat, HintSet::all_enabled()).unwrap();
        let mut pool = BufferPool::new(512);
        let wide =
            execute(&plan.root, &q_wide, &db, &mut pool, &opt.params, &rates).unwrap();

        apply_event(&mut db, &Event::CorpNormalization, 5).unwrap();
        let cat = StatsCatalog::analyze(&db, 500, 1);
        let plan = opt.plan(&q_norm, &db, &cat, HintSet::all_enabled()).unwrap();
        let mut pool = BufferPool::new(512);
        let norm =
            execute(&plan.root, &q_norm, &db, &mut pool, &opt.params, &rates).unwrap();
        assert_eq!(wide.output, norm.output);
    }
}
