//! IMDb-like dataset and the JOB-derived dynamic workload.
//!
//! The real evaluation augments the 113-query Join Order Benchmark with
//! thousands of template-parameterized queries and drifts the template
//! mix over time. This module reproduces the *estimation failure modes*
//! that make JOB hard: correlated attributes (`kind_id` determines the
//! `production_year` range), Zipf-skewed foreign keys (a few titles own
//! most `cast_info` rows), and popularity correlated with recency.

use crate::{Workload, WorkloadStep};
use bao_common::{rng_from_seed, split_seed, Result};
use bao_plan::{AggFunc, CmpOp, ColRef, JoinPred, Predicate, Query, SelectItem, TableRef};
use bao_storage::{ColumnDef, Database, DataType, Schema, Table, Value};
use bao_common::{Rng, Xoshiro256};

/// IMDb workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct ImdbConfig {
    /// Data scale: 1.0 ≈ 20k titles / 120k cast rows.
    pub scale: f64,
    /// Queries in the workload stream.
    pub n_queries: usize,
    /// Introduce new templates over time (paper Table 1 "WL: Dynamic").
    /// When false, all templates are active from the start (the stable
    /// workload of Figure 14a).
    pub dynamic: bool,
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig { scale: 1.0, n_queries: 500, dynamic: true, seed: 42 }
    }
}

fn n_titles(scale: f64) -> i64 {
    (20_000.0 * scale).max(500.0) as i64
}

/// Zipf-ish rank sampler: concentrated on low ranks (quadratic inverse
/// CDF — strong enough skew to break uniformity assumptions, bounded
/// enough that multi-fact star joins stay tractable).
fn zipf(rng: &mut Xoshiro256, n: i64) -> i64 {
    let u: f64 = rng.gen_f64();
    ((u * u) * n as f64) as i64
}

/// Build the IMDb-like database: six tables with engineered correlation
/// and skew, plus the indexes a production deployment would carry.
pub fn build_imdb_database(scale: f64, seed: u64) -> Result<Database> {
    let mut rng = rng_from_seed(split_seed(seed, 0));
    let titles = n_titles(scale);
    let people = titles * 5 / 4;

    // --- title: three engineered phenomena that break PostgreSQL-style
    // estimation the way the Join Order Benchmark does:
    //  1. popularity <-> recency: low ids (which the Zipf foreign keys
    //     favour) are recent, so a recent-year filter selects exactly the
    //     titles with the most join partners (join underestimation);
    //  2. kind <-> year correlation (conjunctions underestimated);
    //  3. `start_year` is redundant with `production_year`, so predicates
    //     touching both are underestimated ~70x under independence.
    let mut title = Table::new(
        "title",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("kind_id", DataType::Int),
            ColumnDef::new("production_year", DataType::Int),
            ColumnDef::new("start_year", DataType::Int),
            ColumnDef::new("episode_nr", DataType::Int),
        ]),
    );
    for i in 0..titles {
        // Low id => recent: id 0 ~ 2019, id n ~ 1919 (sublinear decay).
        let age = ((i as f64 / titles as f64).powf(0.7) * 100.0) as i64;
        let year = (2019 - age + rng.gen_range(-3i64..=3)).clamp(1900, 2019);
        let kind: i64 = if year >= 2000 && rng.gen_bool(0.3) {
            3 // episode
        } else if year >= 1990 && rng.gen_bool(0.45) {
            2 // tv series
        } else if rng.gen_bool(0.85) {
            1 // movie
        } else {
            rng.gen_range(4..=7)
        };
        let start_year = if rng.gen_bool(0.9) { year } else { year + 1 };
        let episode = if kind == 3 { rng.gen_range(1..=400) } else { 0 };
        title.insert(vec![
            Value::Int(i),
            Value::Int(kind),
            Value::Int(year),
            Value::Int(start_year),
            Value::Int(episode),
        ])?;
    }

    // --- person
    let mut person = Table::new(
        "person",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("gender", DataType::Int),
            ColumnDef::new("birth_year", DataType::Int),
        ]),
    );
    for i in 0..people {
        person.insert(vec![
            Value::Int(i),
            Value::Int(rng.gen_range(0..=2)),
            Value::Int(rng.gen_range(1920..=2000)),
        ])?;
    }

    // --- cast_info: movie_id Zipf (popular titles get most rows),
    // person_id Zipf, role skewed.
    let mut cast_info = Table::new(
        "cast_info",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("movie_id", DataType::Int),
            ColumnDef::new("person_id", DataType::Int),
            ColumnDef::new("role_id", DataType::Int),
        ]),
    );
    for i in 0..(titles * 6) {
        let role = if rng.gen_bool(0.55) { 1 } else { rng.gen_range(2..=11) };
        cast_info.insert(vec![
            Value::Int(i),
            Value::Int(zipf(&mut rng, titles)),
            Value::Int(zipf(&mut rng, people)),
            Value::Int(role),
        ])?;
    }

    // --- movie_companies
    let companies = (titles / 40).max(20);
    let mut movie_companies = Table::new(
        "movie_companies",
        Schema::new(vec![
            ColumnDef::new("movie_id", DataType::Int),
            ColumnDef::new("company_id", DataType::Int),
            ColumnDef::new("company_type_id", DataType::Int),
        ]),
    );
    for _ in 0..(titles * 2) {
        movie_companies.insert(vec![
            Value::Int(zipf(&mut rng, titles)),
            Value::Int(zipf(&mut rng, companies)),
            Value::Int(rng.gen_range(1..=4)),
        ])?;
    }

    // --- movie_info: info_type_id correlated with kind via the movie
    let mut movie_info = Table::new(
        "movie_info",
        Schema::new(vec![
            ColumnDef::new("movie_id", DataType::Int),
            ColumnDef::new("info_type_id", DataType::Int),
            ColumnDef::new("info_val", DataType::Int),
        ]),
    );
    for _ in 0..(titles * 3) {
        let m = zipf(&mut rng, titles);
        let it = if m % 3 == 0 { rng.gen_range(1..=10) } else { rng.gen_range(1..=110) };
        movie_info.insert(vec![
            Value::Int(m),
            Value::Int(it),
            Value::Int(rng.gen_range(0..=100)),
        ])?;
    }

    // --- movie_keyword
    let keywords = (titles / 8).max(50);
    let mut movie_keyword = Table::new(
        "movie_keyword",
        Schema::new(vec![
            ColumnDef::new("movie_id", DataType::Int),
            ColumnDef::new("keyword_id", DataType::Int),
        ]),
    );
    for _ in 0..(titles * 5 / 2) {
        movie_keyword.insert(vec![
            Value::Int(zipf(&mut rng, titles)),
            Value::Int(zipf(&mut rng, keywords)),
        ])?;
    }

    let mut db = Database::new();
    db.create_table(title)?;
    db.create_table(person)?;
    db.create_table(cast_info)?;
    db.create_table(movie_companies)?;
    db.create_table(movie_info)?;
    db.create_table(movie_keyword)?;
    for (t, c) in [
        ("title", "id"),
        ("title", "production_year"),
        ("title", "start_year"),
        ("title", "kind_id"),
        ("person", "id"),
        ("person", "birth_year"),
        ("cast_info", "movie_id"),
        ("cast_info", "person_id"),
        ("movie_companies", "movie_id"),
        ("movie_companies", "company_id"),
        ("movie_info", "movie_id"),
        ("movie_info", "info_type_id"),
        ("movie_keyword", "movie_id"),
        ("movie_keyword", "keyword_id"),
    ] {
        db.create_index(t, c)?;
    }
    Ok(db)
}

/// Number of query templates.
pub const N_TEMPLATES: usize = 15;

/// Instantiate template `t` with template-specific random parameters.
/// Returns `(label, query)`.
pub fn instantiate_template(t: usize, scale: f64, rng: &mut Xoshiro256) -> (String, Query) {
    let titles = n_titles(scale);
    let _people = titles * 5 / 4;
    let companies = (titles / 40).max(20);
    let keywords = (titles / 8).max(50);
    let year = rng.gen_range(1950..=2018);
    let label = format!("imdb/q{t:02}");

    let count = vec![SelectItem::Agg(AggFunc::CountStar)];
    let q = match t {
        0 => Query {
            tables: vec![TableRef::aliased("title", "t")],
            select: count,
            predicates: vec![
                pred(0, "production_year", CmpOp::Gt, year),
                pred(0, "kind_id", CmpOp::Eq, rng.gen_range(1..=7)),
            ],
            ..Default::default()
        },
        1 => Query {
            tables: vec![TableRef::aliased("title", "t"), TableRef::aliased("cast_info", "ci")],
            select: count,
            predicates: vec![
                pred(0, "production_year", CmpOp::Ge, year),
                pred(1, "role_id", CmpOp::Eq, rng.gen_range(1..=11)),
            ],
            joins: vec![join((0, "id"), (1, "movie_id"))],
            ..Default::default()
        },
        2 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("movie_companies", "mc"),
            ],
            select: count,
            predicates: vec![pred(1, "company_id", CmpOp::Eq, zipf(rng, companies))],
            joins: vec![join((0, "id"), (1, "movie_id"))],
            ..Default::default()
        },
        3 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("cast_info", "ci"),
                TableRef::aliased("person", "p"),
            ],
            select: vec![SelectItem::Agg(AggFunc::Min(ColRef::new(0, "production_year")))],
            predicates: vec![
                pred(2, "birth_year", CmpOp::Gt, rng.gen_range(1940..=1990)),
                pred(1, "role_id", CmpOp::Le, rng.gen_range(1..=4)),
            ],
            joins: vec![
                join((0, "id"), (1, "movie_id")),
                join((1, "person_id"), (2, "id")),
            ],
            ..Default::default()
        },
        4 => {
            // Redundant year range over both correlated columns: the
            // conjunction is underestimated quadratically.
            let y = rng.gen_range(2000..=2016);
            Query {
                tables: vec![TableRef::aliased("title", "t"), TableRef::aliased("movie_info", "mi")],
                select: count,
                predicates: vec![
                    pred(1, "info_type_id", CmpOp::Eq, rng.gen_range(1..=110)),
                    pred(0, "production_year", CmpOp::Ge, y),
                    pred(0, "start_year", CmpOp::Ge, y),
                    pred(0, "production_year", CmpOp::Le, y + 2),
                    pred(0, "start_year", CmpOp::Le, y + 3),
                ],
                joins: vec![join((0, "id"), (1, "movie_id"))],
                ..Default::default()
            }
        }
        5 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("movie_keyword", "mk"),
            ],
            select: count,
            predicates: vec![pred(1, "keyword_id", CmpOp::Eq, zipf(rng, keywords))],
            joins: vec![join((0, "id"), (1, "movie_id"))],
            ..Default::default()
        },
        6 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("cast_info", "ci"),
                TableRef::aliased("movie_companies", "mc"),
            ],
            select: count,
            predicates: vec![
                pred(0, "production_year", CmpOp::Ge, year),
                pred(2, "company_type_id", CmpOp::Eq, rng.gen_range(1..=4)),
            ],
            joins: vec![
                join((0, "id"), (1, "movie_id")),
                join((0, "id"), (2, "movie_id")),
            ],
            ..Default::default()
        },
        7 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("movie_info", "mi"),
                TableRef::aliased("movie_keyword", "mk"),
            ],
            select: count,
            predicates: vec![
                pred(1, "info_type_id", CmpOp::Le, rng.gen_range(2..=20)),
                pred(0, "kind_id", CmpOp::Eq, rng.gen_range(1..=3)),
            ],
            joins: vec![
                join((0, "id"), (1, "movie_id")),
                join((0, "id"), (2, "movie_id")),
            ],
            ..Default::default()
        },
        8 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("cast_info", "ci"),
                TableRef::aliased("person", "p"),
                TableRef::aliased("movie_companies", "mc"),
            ],
            select: count,
            predicates: vec![
                pred(2, "gender", CmpOp::Eq, rng.gen_range(0..=2)),
                pred(0, "production_year", CmpOp::Gt, year),
                pred(3, "company_type_id", CmpOp::Le, 2),
            ],
            joins: vec![
                join((0, "id"), (1, "movie_id")),
                join((1, "person_id"), (2, "id")),
                join((0, "id"), (3, "movie_id")),
            ],
            ..Default::default()
        },
        // The "16b-like" template: a redundant correlated year-range
        // filter (production_year ~ start_year) is underestimated
        // quadratically, and it selects exactly the *popular* recent
        // titles whose Zipf-skewed fact rows uniformity under-counts.
        // Predicates on ci.role_id / mc.company_type_id force the inner
        // index scans to fetch heap rows. The default optimizer dives
        // into a parameterized nested-loop cascade that is ~10-25x worse
        // than the hash plan; disabling loop joins is a large win.
        9 => {
            let y = rng.gen_range(2009..=2016);
            Query {
                tables: vec![
                    TableRef::aliased("title", "t"),
                    TableRef::aliased("cast_info", "ci"),
                    TableRef::aliased("movie_companies", "mc"),
                ],
                select: count,
                predicates: vec![
                    pred(0, "production_year", CmpOp::Ge, y),
                    pred(0, "start_year", CmpOp::Ge, y),
                    pred(1, "role_id", CmpOp::Le, rng.gen_range(1..=3)),
                    pred(2, "company_type_id", CmpOp::Le, rng.gen_range(2..=3)),
                ],
                joins: vec![
                    join((0, "id"), (1, "movie_id")),
                    join((0, "id"), (2, "movie_id")),
                ],
                ..Default::default()
            }
        }
        // The "24b-like" template: a single-title probe where the default
        // parameterized nested loop is exactly right, and disabling loops
        // is catastrophic.
        10 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("cast_info", "ci"),
                TableRef::aliased("movie_keyword", "mk"),
                TableRef::aliased("movie_info", "mi"),
            ],
            select: count,
            predicates: vec![pred(0, "id", CmpOp::Eq, zipf(rng, titles))],
            joins: vec![
                join((0, "id"), (1, "movie_id")),
                join((0, "id"), (2, "movie_id")),
                join((0, "id"), (3, "movie_id")),
            ],
            ..Default::default()
        },
        11 => Query {
            tables: vec![TableRef::aliased("title", "t")],
            select: vec![
                SelectItem::Column(ColRef::new(0, "kind_id")),
                SelectItem::Agg(AggFunc::CountStar),
            ],
            predicates: vec![pred(0, "production_year", CmpOp::Ge, year)],
            group_by: vec![ColRef::new(0, "kind_id")],
            ..Default::default()
        },
        12 => Query {
            tables: vec![
                TableRef::aliased("cast_info", "ci"),
                TableRef::aliased("person", "p"),
            ],
            select: vec![SelectItem::Agg(AggFunc::Max(ColRef::new(1, "birth_year")))],
            predicates: vec![
                pred(0, "role_id", CmpOp::Eq, rng.gen_range(1..=11)),
                pred(1, "birth_year", CmpOp::Lt, rng.gen_range(1950..=2000)),
            ],
            joins: vec![join((0, "person_id"), (1, "id"))],
            ..Default::default()
        },
        13 => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("movie_keyword", "mk"),
                TableRef::aliased("movie_info", "mi"),
                TableRef::aliased("movie_companies", "mc"),
            ],
            select: count,
            predicates: vec![
                pred(1, "keyword_id", CmpOp::Eq, zipf(rng, keywords)),
                pred(2, "info_type_id", CmpOp::Eq, rng.gen_range(1..=40)),
            ],
            joins: vec![
                join((0, "id"), (1, "movie_id")),
                join((0, "id"), (2, "movie_id")),
                join((0, "id"), (3, "movie_id")),
            ],
            ..Default::default()
        },
        // Ultra-popular range probe: `t.id <= K` selects a tiny set of
        // titles that each carry 10-60x the average number of fact rows.
        // Every estimator prices the parameterized nested loop with the
        // *average* per-key multiplicity, so even the sample-based ComSys
        // estimator walks into the loop cascade here — the headroom that
        // lets Bao improve on the commercial baseline too (paper ~20%).
        _ => Query {
            tables: vec![
                TableRef::aliased("title", "t"),
                TableRef::aliased("cast_info", "ci"),
                TableRef::aliased("movie_keyword", "mk"),
            ],
            select: count,
            predicates: vec![
                pred(0, "id", CmpOp::Le, rng.gen_range(8..=22)),
                pred(1, "role_id", CmpOp::Le, rng.gen_range(2..=4)),
            ],
            joins: vec![
                join((0, "id"), (1, "movie_id")),
                join((0, "id"), (2, "movie_id")),
            ],
            ..Default::default()
        },
    };
    (label, q)
}

fn pred(table: usize, col: &str, op: CmpOp, v: i64) -> Predicate {
    Predicate::new(ColRef::new(table, col), op, Value::Int(v))
}

fn join(l: (usize, &str), r: (usize, &str)) -> JoinPred {
    JoinPred::new(ColRef::new(l.0, l.1), ColRef::new(r.0, r.1))
}

/// The 113 fixed "JOB" queries (paper Figure 11's held-out set):
/// deterministic template instantiations, labelled `JOB-<n><letter>`.
pub fn job_queries(scale: f64, seed: u64) -> Vec<(String, Query)> {
    let mut out = Vec::with_capacity(113);
    for i in 0..113usize {
        let mut rng = rng_from_seed(split_seed(seed, 10_000 + i as u64));
        let t = i % N_TEMPLATES;
        let (_, q) = instantiate_template(t, scale, &mut rng);
        let label = format!("JOB-{}{}", i / 4 + 1, (b'a' + (i % 4) as u8) as char);
        out.push((label, q));
    }
    out
}

/// Build the database and query stream.
pub fn build_imdb(cfg: &ImdbConfig) -> Result<(Database, Workload)> {
    let db = build_imdb_database(cfg.scale, cfg.seed)?;
    let mut steps = Vec::with_capacity(cfg.n_queries);
    for i in 0..cfg.n_queries {
        let mut rng = rng_from_seed(split_seed(cfg.seed, 20_000 + i as u64));
        let t = if cfg.dynamic {
            // Templates become active in four phases: 8, 10, 12, then all
            // 14 — "we vary the query workload over time by introducing
            // new templates periodically".
            let phase = (i * 4) / cfg.n_queries.max(1);
            let active = (9 + 2 * phase).min(N_TEMPLATES);
            rng.gen_range(0..active)
        } else {
            rng.gen_range(0..N_TEMPLATES)
        };
        let (label, query) = instantiate_template(t, cfg.scale, &mut rng);
        steps.push(WorkloadStep { label, query, event: None });
    }
    Ok((db, Workload { name: "imdb".into(), steps }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_has_expected_shape() {
        let db = build_imdb_database(0.05, 1).unwrap();
        assert_eq!(db.table_names().len(), 6);
        let titles = db.by_name("title").unwrap().table.row_count();
        assert_eq!(titles, 1_000);
        assert_eq!(db.by_name("cast_info").unwrap().table.row_count(), 6_000);
        assert!(db.by_name("title").unwrap().index_on("production_year").is_some());
    }

    #[test]
    fn correlation_kind2_is_recent() {
        let db = build_imdb_database(0.05, 2).unwrap();
        let t = &db.by_name("title").unwrap().table;
        let kind = t.column("kind_id").unwrap();
        let year = t.column("production_year").unwrap();
        for r in 0..t.row_count() {
            if kind.key_at(r) == Some(2) {
                assert!(year.key_at(r).unwrap() >= 1990);
            }
        }
    }

    #[test]
    fn fk_skew_present() {
        let db = build_imdb_database(0.05, 3).unwrap();
        let ci = &db.by_name("cast_info").unwrap().table;
        let col = ci.column("movie_id").unwrap();
        let n = ci.row_count();
        let popular = (0..n)
            .filter(|&r| col.key_at(r).unwrap() < 100)
            .count();
        // 10% of the id space should hold far more than 10% of rows.
        assert!(popular as f64 / n as f64 > 0.3, "skew too weak: {popular}/{n}");
    }

    #[test]
    fn workload_generation_deterministic_and_valid() {
        let cfg = ImdbConfig { scale: 0.05, n_queries: 60, dynamic: true, seed: 5 };
        let (db, wl) = build_imdb(&cfg).unwrap();
        let (_, wl2) = build_imdb(&cfg).unwrap();
        assert_eq!(wl.len(), 60);
        assert_eq!(wl.steps[10].query, wl2.steps[10].query);
        assert_eq!(wl.n_events(), 0);
        // every query references live tables
        for s in &wl.steps {
            for t in &s.query.tables {
                assert!(db.by_name(&t.table).is_ok(), "{} missing", t.table);
            }
        }
    }

    #[test]
    fn dynamic_workload_introduces_templates_late() {
        let cfg = ImdbConfig { scale: 0.05, n_queries: 200, dynamic: true, seed: 6 };
        let (_, wl) = build_imdb(&cfg).unwrap();
        let first_half: Vec<&str> =
            wl.steps[..100].iter().map(|s| s.label.as_str()).collect();
        let has_late_template =
            |labels: &[&str]| labels.iter().any(|l| *l >= "imdb/q12");
        assert!(!has_late_template(&first_half), "templates 12+ must not appear early");
        let second_half: Vec<&str> =
            wl.steps[150..].iter().map(|s| s.label.as_str()).collect();
        assert!(has_late_template(&second_half), "late templates should appear");
    }

    #[test]
    fn stable_workload_uses_all_templates_early() {
        let cfg = ImdbConfig { scale: 0.05, n_queries: 300, dynamic: false, seed: 7 };
        let (_, wl) = build_imdb(&cfg).unwrap();
        let early: std::collections::HashSet<&str> =
            wl.steps[..150].iter().map(|s| s.label.as_str()).collect();
        assert!(early.len() >= N_TEMPLATES - 2, "most templates early: {early:?}");
    }

    #[test]
    fn job_queries_fixed_and_distinct_from_seeded_workload() {
        let a = job_queries(0.05, 9);
        let b = job_queries(0.05, 9);
        assert_eq!(a.len(), 113);
        assert_eq!(a[0].1, b[0].1);
        assert!(a[0].0.starts_with("JOB-1a"));
        // different seeds give different parameters
        let c = job_queries(0.05, 10);
        assert_ne!(a.iter().map(|x| &x.1).collect::<Vec<_>>(),
                   c.iter().map(|x| &x.1).collect::<Vec<_>>());
    }
}
