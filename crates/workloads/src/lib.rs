//! Synthetic workloads reproducing the paper's three evaluation datasets
//! (Table 1): IMDb (dynamic queries), Stack (dynamic data), and Corp
//! (dynamic schema). See DESIGN.md §1 for the substitution rationale.
//!
//! Each builder returns a populated [`bao_storage::Database`] plus a
//! [`Workload`]: an ordered list of steps, where a step optionally carries
//! an [`Event`] (data load / schema change) the harness must apply — and
//! re-ANALYZE for — before executing the step's query.

pub mod corp;
pub mod imdb;
pub mod stack;

use bao_common::json::{self, FromJson, Json, ToJson};
use bao_common::{BaoError, Result};
use bao_plan::Query;
use bao_storage::Database;

pub use corp::{build_corp, CorpConfig};
pub use imdb::{build_imdb, ImdbConfig};
pub use stack::{build_stack, StackConfig};

/// A mid-workload environment change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Stack: load one more month of data (tables grow).
    LoadStackMonth { month: u32 },
    /// Corp: normalize the wide fact table into fact + dimension.
    CorpNormalization,
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        match self {
            Event::LoadStackMonth { month } => Json::obj([(
                "LoadStackMonth",
                Json::obj([("month", month.to_json())]),
            )]),
            Event::CorpNormalization => Json::Str("CorpNormalization".to_string()),
        }
    }
}

impl FromJson for Event {
    fn from_json(j: &Json) -> Result<Event> {
        if j.as_str() == Some("CorpNormalization") {
            return Ok(Event::CorpNormalization);
        }
        if let Some(v) = j.get("LoadStackMonth") {
            return Ok(Event::LoadStackMonth { month: json::field(v, "month")? });
        }
        Err(BaoError::Parse(format!("unknown Event {j:?}")))
    }
}

/// One step of a workload: an optional environment event, then a query.
#[derive(Debug, Clone)]
pub struct WorkloadStep {
    /// Template label (e.g. `"imdb/q07"` or `"JOB-16b"`).
    pub label: String,
    pub query: Query,
    /// Applied (and statistics rebuilt) before the query runs.
    pub event: Option<Event>,
}

impl ToJson for WorkloadStep {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("query", self.query.to_json()),
            ("event", self.event.to_json()),
        ])
    }
}

impl FromJson for WorkloadStep {
    fn from_json(j: &Json) -> Result<WorkloadStep> {
        Ok(WorkloadStep {
            label: json::field(j, "label")?,
            query: json::field(j, "query")?,
            event: json::field(j, "event")?,
        })
    }
}

/// An ordered query stream over a database.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: String,
    pub steps: Vec<WorkloadStep>,
}

impl Workload {
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps carrying events.
    pub fn n_events(&self) -> usize {
        self.steps.iter().filter(|s| s.event.is_some()).count()
    }

    /// Serialize the query stream to JSON (the data itself is regenerated
    /// from the seed; exporting the stream lets external tooling replay
    /// exactly the queries an experiment ran).
    pub fn to_json(&self) -> Result<String> {
        let j = Json::obj([("name", self.name.to_json()), ("steps", self.steps.to_json())]);
        Ok(j.to_string_pretty())
    }

    /// Restore a workload exported with [`Workload::to_json`].
    pub fn from_json(text: &str) -> Result<Workload> {
        let j = json::parse(text)
            .map_err(|e| BaoError::Config(format!("parse workload: {e}")))?;
        Ok(Workload { name: json::field(&j, "name")?, steps: json::field(&j, "steps")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_json_round_trip() {
        let (_, wl) = build_imdb(&ImdbConfig {
            scale: 0.05,
            n_queries: 12,
            dynamic: true,
            seed: 3,
        })
        .unwrap();
        let json = wl.to_json().unwrap();
        let restored = Workload::from_json(&json).unwrap();
        assert_eq!(restored.name, wl.name);
        assert_eq!(restored.len(), wl.len());
        for (a, b) in wl.steps.iter().zip(restored.steps.iter()) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.label, b.label);
            assert_eq!(a.event, b.event);
        }
        assert!(Workload::from_json("{nope").is_err());
    }

    #[test]
    fn stack_events_survive_round_trip() {
        let (_, wl) = build_stack(&StackConfig {
            scale: 0.05,
            n_queries: 30,
            initial_months: 2,
            total_months: 4,
            seed: 5,
        })
        .unwrap();
        let restored = Workload::from_json(&wl.to_json().unwrap()).unwrap();
        assert_eq!(restored.n_events(), wl.n_events());
    }
}

/// Apply an environment event to the database. The caller must rebuild
/// the statistics catalog afterwards (the paper: "database statistics are
/// fully rebuilt each time a new dataset is loaded").
pub fn apply_event(db: &mut Database, event: &Event, seed: u64) -> Result<()> {
    match event {
        Event::LoadStackMonth { month } => stack::load_month(db, *month, seed),
        Event::CorpNormalization => corp::normalize_fact_table(db),
    }
}
