//! Stack-like dataset: StackExchange questions/answers/votes with **data
//! drift** — the paper "emulate[s] data drift by loading a month of data
//! at a time" (Table 1: WL dynamic, Data dynamic, Schema static).

use crate::{Event, Workload, WorkloadStep};
use bao_common::{rng_from_seed, split_seed, BaoError, Result};
use bao_plan::{AggFunc, CmpOp, ColRef, JoinPred, Predicate, Query, SelectItem, TableRef};
use bao_storage::{ColumnDef, Database, DataType, Schema, Table, Value};
use bao_common::{Rng, Xoshiro256};

/// Stack workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// 1.0 ≈ 10k users, ~2.5k questions per month.
    pub scale: f64,
    pub n_queries: usize,
    /// Months resident before the workload starts.
    pub initial_months: u32,
    /// Total months; the remainder loads as mid-workload events.
    pub total_months: u32,
    pub seed: u64,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig { scale: 1.0, n_queries: 500, initial_months: 4, total_months: 10, seed: 43 }
    }
}

fn n_users(scale: f64) -> i64 {
    (10_000.0 * scale).max(300.0) as i64
}

fn questions_per_month(scale: f64) -> i64 {
    (2_500.0 * scale).max(100.0) as i64
}

fn zipf(rng: &mut Xoshiro256, n: i64) -> i64 {
    let u: f64 = rng.gen_f64();
    ((u * u) * n as f64) as i64
}

/// Append one month of questions/answers/votes. Question ids are globally
/// unique (month-major), so join keys never collide across loads.
pub fn load_month(db: &mut Database, month: u32, seed: u64) -> Result<()> {
    let scale = db.by_name("users")?.table.row_count() as f64 / 10_000.0;
    let mut rng = rng_from_seed(split_seed(seed, 1_000 + month as u64));
    let users = n_users(scale);
    let qpm = questions_per_month(scale);
    let base_qid = month as i64 * qpm;

    let mut questions = Vec::new();
    for i in 0..qpm {
        let qid = base_qid + i;
        // 85% of traffic is "site 1" (stackoverflow.com). Scores are
        // popularity-correlated: the low-offset questions of each month,
        // the ones the Zipf-skewed answers and votes pile onto, carry
        // the high scores, so a high-score filter selects exactly the
        // questions with far more join partners than average (the same
        // trap the IMDb workload springs). `views` is redundant with
        // score: conjunctions over both are quadratically underestimated
        // under independence.
        let site = if rng.gen_bool(0.85) { 1 } else { rng.gen_range(2..=40) };
        let age_bonus = 3 * (24 - month.min(24)) as i64 / 8;
        let pop_bonus = if i < qpm / 50 {
            rng.gen_range(50..=200)
        } else if i < qpm / 10 {
            rng.gen_range(10..=49)
        } else {
            0
        };
        let score = rng.gen_range(0i64..=5) + age_bonus + pop_bonus;
        let views = score * 120 + rng.gen_range(0i64..=200);
        questions.push(vec![
            Value::Int(qid),
            Value::Int(site),
            Value::Int(zipf(&mut rng, users)),
            Value::Int(month as i64),
            Value::Int(score),
            Value::Int(views),
        ]);
    }
    db.append_rows("questions", questions)?;

    let mut answers = Vec::new();
    for i in 0..(qpm * 2) {
        let aid = month as i64 * qpm * 2 + i;
        // Answers attach to questions of this or earlier months, skewed
        // toward popular (low-rank) questions.
        let q_month = rng.gen_range(0..=month) as i64;
        let qid = q_month * qpm + zipf(&mut rng, qpm);
        answers.push(vec![
            Value::Int(aid),
            Value::Int(qid),
            Value::Int(zipf(&mut rng, users)),
            Value::Int(rng.gen_range(0..=20)),
            Value::Int(month as i64),
        ]);
    }
    db.append_rows("answers", answers)?;

    let mut votes = Vec::new();
    for _ in 0..(qpm * 3) {
        let q_month = rng.gen_range(0..=month) as i64;
        let qid = q_month * qpm + zipf(&mut rng, qpm);
        votes.push(vec![
            Value::Int(qid),
            Value::Int(if rng.gen_bool(0.8) { 2 } else { rng.gen_range(1..=15) }),
            Value::Int(month as i64),
        ]);
    }
    db.append_rows("votes", votes)?;
    Ok(())
}

/// Build the initial Stack database (months `0..initial_months`).
pub fn build_stack_database(cfg: &StackConfig) -> Result<Database> {
    if cfg.initial_months == 0 || cfg.initial_months > cfg.total_months {
        return Err(BaoError::Config("initial_months must be in 1..=total_months".into()));
    }
    let mut rng = rng_from_seed(split_seed(cfg.seed, 0));
    let users_n = n_users(cfg.scale);
    let mut users = Table::new(
        "users",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("reputation", DataType::Int),
            ColumnDef::new("creation_year", DataType::Int),
        ]),
    );
    for i in 0..users_n {
        // Reputation is Zipf-like: low-id (old) users hold most of it.
        let rep = ((users_n - i) as f64 / users_n as f64 * 100_000.0
            * rng.gen_f64().powi(2)) as i64;
        users.insert(vec![
            Value::Int(i),
            Value::Int(rep),
            Value::Int(rng.gen_range(2008..=2019)),
        ])?;
    }
    let questions = Table::new(
        "questions",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("site_id", DataType::Int),
            ColumnDef::new("owner_id", DataType::Int),
            ColumnDef::new("month", DataType::Int),
            ColumnDef::new("score", DataType::Int),
            ColumnDef::new("views", DataType::Int),
        ]),
    );
    let answers = Table::new(
        "answers",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("question_id", DataType::Int),
            ColumnDef::new("owner_id", DataType::Int),
            ColumnDef::new("score", DataType::Int),
            ColumnDef::new("month", DataType::Int),
        ]),
    );
    let votes = Table::new(
        "votes",
        Schema::new(vec![
            ColumnDef::new("question_id", DataType::Int),
            ColumnDef::new("vote_type", DataType::Int),
            ColumnDef::new("month", DataType::Int),
        ]),
    );
    let mut db = Database::new();
    db.create_table(users)?;
    db.create_table(questions)?;
    db.create_table(answers)?;
    db.create_table(votes)?;
    for m in 0..cfg.initial_months {
        load_month(&mut db, m, cfg.seed)?;
    }
    for (t, c) in [
        ("users", "id"),
        ("users", "reputation"),
        ("questions", "id"),
        ("questions", "owner_id"),
        ("questions", "month"),
        ("questions", "score"),
        ("answers", "question_id"),
        ("answers", "owner_id"),
        ("votes", "question_id"),
    ] {
        db.create_index(t, c)?;
    }
    Ok(db)
}

const N_TEMPLATES: usize = 9;

fn pred(table: usize, col: &str, op: CmpOp, v: i64) -> Predicate {
    Predicate::new(ColRef::new(table, col), op, Value::Int(v))
}

fn join(l: (usize, &str), r: (usize, &str)) -> JoinPred {
    JoinPred::new(ColRef::new(l.0, l.1), ColRef::new(r.0, r.1))
}

fn instantiate(t: usize, cfg: &StackConfig, loaded_months: u32, rng: &mut Xoshiro256) -> (String, Query) {
    let users = n_users(cfg.scale);
    let label = format!("stack/q{t:02}");
    let count = vec![SelectItem::Agg(AggFunc::CountStar)];
    // "Recent" predicates track the loaded horizon — the drift stressor.
    let recent = loaded_months.saturating_sub(rng.gen_range(1..=3)) as i64;
    let q = match t {
        0 => Query {
            tables: vec![TableRef::aliased("questions", "q")],
            select: count,
            predicates: vec![
                pred(0, "month", CmpOp::Ge, recent),
                pred(0, "score", CmpOp::Ge, rng.gen_range(1..=10)),
            ],
            ..Default::default()
        },
        1 => Query {
            tables: vec![
                TableRef::aliased("questions", "q"),
                TableRef::aliased("answers", "a"),
            ],
            select: count,
            predicates: vec![
                pred(0, "site_id", CmpOp::Eq, 1),
                pred(1, "score", CmpOp::Ge, rng.gen_range(5..=15)),
            ],
            joins: vec![join((0, "id"), (1, "question_id"))],
            ..Default::default()
        },
        2 => Query {
            tables: vec![
                TableRef::aliased("questions", "q"),
                TableRef::aliased("users", "u"),
            ],
            select: count,
            predicates: vec![
                pred(1, "reputation", CmpOp::Gt, rng.gen_range(1_000..=50_000)),
                pred(0, "month", CmpOp::Ge, recent),
            ],
            joins: vec![join((0, "owner_id"), (1, "id"))],
            ..Default::default()
        },
        3 => Query {
            tables: vec![
                TableRef::aliased("questions", "q"),
                TableRef::aliased("answers", "a"),
                TableRef::aliased("users", "u"),
            ],
            select: vec![SelectItem::Agg(AggFunc::Max(ColRef::new(2, "reputation")))],
            predicates: vec![
                pred(0, "month", CmpOp::Eq, rng.gen_range(0..loaded_months.max(1)) as i64),
                pred(0, "site_id", CmpOp::Eq, 1),
            ],
            joins: vec![
                join((0, "id"), (1, "question_id")),
                join((1, "owner_id"), (2, "id")),
            ],
            ..Default::default()
        },
        4 => Query {
            tables: vec![
                TableRef::aliased("questions", "q"),
                TableRef::aliased("votes", "v"),
            ],
            select: count,
            predicates: vec![
                pred(1, "vote_type", CmpOp::Eq, rng.gen_range(1..=15)),
                pred(0, "score", CmpOp::Ge, rng.gen_range(0..=8)),
            ],
            joins: vec![join((0, "id"), (1, "question_id"))],
            ..Default::default()
        },
        5 => Query {
            tables: vec![TableRef::aliased("users", "u")],
            select: vec![
                SelectItem::Column(ColRef::new(0, "creation_year")),
                SelectItem::Agg(AggFunc::CountStar),
            ],
            predicates: vec![pred(0, "reputation", CmpOp::Gt, rng.gen_range(100..=10_000))],
            group_by: vec![ColRef::new(0, "creation_year")],
            ..Default::default()
        },
        6 => Query {
            tables: vec![
                TableRef::aliased("answers", "a"),
                TableRef::aliased("users", "u"),
            ],
            select: count,
            predicates: vec![
                pred(0, "month", CmpOp::Ge, recent),
                pred(1, "id", CmpOp::Lt, zipf(rng, users).max(1)),
            ],
            joins: vec![join((0, "owner_id"), (1, "id"))],
            ..Default::default()
        },
        7 => {
            // Ultra-popular probe: the first few questions ever asked hold
            // far more answers/votes than average; every estimator prices
            // the loop join with the mean multiplicity and falls in.
            let k = rng.gen_range(5..=25);
            Query {
                tables: vec![
                    TableRef::aliased("questions", "q"),
                    TableRef::aliased("answers", "a"),
                    TableRef::aliased("votes", "v"),
                ],
                select: count,
                predicates: vec![
                    pred(0, "id", CmpOp::Le, k),
                    pred(1, "score", CmpOp::Ge, rng.gen_range(1..=5)),
                ],
                joins: vec![
                    join((0, "id"), (1, "question_id")),
                    join((0, "id"), (2, "question_id")),
                ],
                ..Default::default()
            }
        }
        // High-score 3-way: a redundant score/views conjunction that is
        // (a) quadratically underestimated under independence and (b)
        // selects the ultra-popular questions whose answers/votes
        // multiplicities are far above average - the nested-loop trap.
        _ => {
            let s_min = rng.gen_range(40..=80);
            Query {
                tables: vec![
                    TableRef::aliased("questions", "q"),
                    TableRef::aliased("answers", "a"),
                    TableRef::aliased("votes", "v"),
                ],
                select: count,
                predicates: vec![
                    pred(0, "score", CmpOp::Ge, s_min),
                    pred(0, "views", CmpOp::Ge, s_min * 120),
                    pred(1, "score", CmpOp::Ge, rng.gen_range(1..=6)),
                    pred(2, "vote_type", CmpOp::Le, rng.gen_range(3..=12)),
                ],
                joins: vec![
                    join((0, "id"), (1, "question_id")),
                    join((0, "id"), (2, "question_id")),
                ],
                ..Default::default()
            }
        }
    };
    (label, q)
}

/// Build the Stack database plus a workload whose remaining months load
/// as events spaced evenly through the stream.
pub fn build_stack(cfg: &StackConfig) -> Result<(Database, Workload)> {
    let db = build_stack_database(cfg)?;
    let pending: Vec<u32> = (cfg.initial_months..cfg.total_months).collect();
    let spacing = cfg.n_queries / (pending.len() + 1).max(1);
    let mut steps = Vec::with_capacity(cfg.n_queries);
    let mut loaded = cfg.initial_months;
    let mut next_load = 0usize;
    for i in 0..cfg.n_queries {
        let mut event = None;
        if next_load < pending.len() && spacing > 0 && i == (next_load + 1) * spacing {
            event = Some(Event::LoadStackMonth { month: pending[next_load] });
            loaded = pending[next_load] + 1;
            next_load += 1;
        }
        let mut rng = rng_from_seed(split_seed(cfg.seed, 30_000 + i as u64));
        let t = rng.gen_range(0..N_TEMPLATES);
        let (label, query) = instantiate(t, cfg, loaded, &mut rng);
        steps.push(WorkloadStep { label, query, event });
    }
    Ok((db, Workload { name: "stack".into(), steps }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_event;

    fn small() -> StackConfig {
        StackConfig { scale: 0.05, n_queries: 60, initial_months: 2, total_months: 5, seed: 3 }
    }

    #[test]
    fn initial_database_shape() {
        let db = build_stack_database(&small()).unwrap();
        assert_eq!(db.table_names().len(), 4);
        let qpm = questions_per_month(0.05) as usize;
        assert_eq!(db.by_name("questions").unwrap().table.row_count(), 2 * qpm);
        assert_eq!(db.by_name("answers").unwrap().table.row_count(), 4 * qpm);
    }

    #[test]
    fn month_loads_grow_tables_and_rebuild_indexes() {
        let mut db = build_stack_database(&small()).unwrap();
        let before = db.by_name("questions").unwrap().table.row_count();
        apply_event(&mut db, &Event::LoadStackMonth { month: 2 }, 3).unwrap();
        let after = db.by_name("questions").unwrap().table.row_count();
        assert_eq!(after - before, questions_per_month(0.05) as usize);
        // index sees the new rows
        let qpm = questions_per_month(0.05);
        let idx = db.by_name("questions").unwrap().index_on("id").unwrap();
        assert!(!idx.index.lookup(2 * qpm + 1).rows.is_empty());
    }

    #[test]
    fn workload_interleaves_month_events() {
        let cfg = small();
        let (_, wl) = build_stack(&cfg).unwrap();
        assert_eq!(wl.len(), 60);
        assert_eq!(wl.n_events(), 3, "months 2,3,4 load mid-stream");
        let months: Vec<u32> = wl
            .steps
            .iter()
            .filter_map(|s| match &s.event {
                Some(Event::LoadStackMonth { month }) => Some(*month),
                _ => None,
            })
            .collect();
        assert_eq!(months, vec![2, 3, 4]);
    }

    #[test]
    fn queries_reference_loaded_months_only() {
        let cfg = small();
        let (_, wl) = build_stack(&cfg).unwrap();
        let mut loaded = cfg.initial_months as i64;
        for s in &wl.steps {
            if let Some(Event::LoadStackMonth { month }) = &s.event {
                loaded = *month as i64 + 1;
            }
            for p in &s.query.predicates {
                if p.col.column == "month" {
                    let v = p.value.as_int().unwrap();
                    assert!(v < loaded, "query references unloaded month {v} (loaded {loaded})");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let (_, a) = build_stack(&small()).unwrap();
        let (_, b) = build_stack(&small()).unwrap();
        assert_eq!(a.steps[5].query, b.steps[5].query);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = small();
        cfg.initial_months = 9;
        assert!(build_stack_database(&cfg).is_err());
        cfg.initial_months = 0;
        assert!(build_stack_database(&cfg).is_err());
    }
}
