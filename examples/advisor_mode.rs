//! Advisor mode (paper §4, Figure 6): Bao observes query executions and
//! trains, but never changes plans — instead, EXPLAIN output is augmented
//! with its prediction and recommended hint so a DBA can apply hints
//! manually.
//!
//! Run with: `cargo run --release -p bao-bench --example advisor_mode`

use bao_cloud::N1_16;
use bao_core::{Bao, BaoConfig};
use bao_exec::execute;
use bao_opt::{HintSet, Optimizer};
use bao_stats::StatsCatalog;
use bao_storage::BufferPool;
use bao_workloads::{build_imdb, ImdbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (db, workload) =
        build_imdb(&ImdbConfig { scale: 0.1, n_queries: 150, dynamic: false, seed: 9 })?;
    let cat = StatsCatalog::analyze(&db, 1_000, 9);
    let opt = Optimizer::postgres();
    let rates = N1_16.charge_rates();

    // `enabled: false` = advisor mode: Bao still observes every execution
    // (off-policy learning) but always runs the default optimizer's plan.
    let mut bao = Bao::new(BaoConfig {
        arms: HintSet::top_arms(6),
        window_size: 500,
        retrain_interval: 50,
        cache_features: true,
        enabled: false,
        bootstrap: true,
        parallel_planning: true,
        planning_threads: 0,
        shard_workers: 1,
        seed: 9,
        durability: None,
    });
    let mut pool = BufferPool::new(N1_16.buffer_pool_pages());
    for step in &workload.steps {
        let sel = bao.select_plan(&opt, &step.query, &db, &cat, Some(&pool))?;
        assert_eq!(sel.arm, 0, "advisor mode never hints");
        let m = execute(&sel.plan, &step.query, &db, &mut pool, &opt.params, &rates)?;
        bao.observe(sel.tree, m.latency.as_ms());
    }

    // A DBA investigates a problematic query with EXPLAIN.
    let trouble = workload
        .steps
        .iter()
        .find(|s| s.label == "imdb/q09")
        .expect("workload contains the trap template");
    println!("imdb=# EXPLAIN {};\n", trouble.query);
    let advice = bao.advise(&opt, &trouble.query, &db, &cat, Some(&pool))?;
    println!("{}", advice.render());
    println!(
        "Applying the recommendation by hand and re-running EXPLAIN would show\n\
         the hinted plan; `SET enable_bao TO on` (active mode) automates it."
    );
    Ok(())
}
