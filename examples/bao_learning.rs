//! Bao's learning loop on the IMDb-like workload: watch the bandit start
//! from the traditional optimizer, train on its own observations, and
//! learn to route tail queries to better hint sets.
//!
//! Run with: `cargo run --release -p bao-bench --example bao_learning`

use bao_cloud::N1_16;
use bao_core::{Bao, BaoConfig};
use bao_exec::execute;
use bao_opt::{HintSet, Optimizer};
use bao_stats::StatsCatalog;
use bao_storage::BufferPool;
use bao_workloads::{build_imdb, ImdbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_queries = 300;
    let (db, workload) = build_imdb(&ImdbConfig {
        scale: 0.1,
        n_queries,
        dynamic: true,
        seed: 42,
    })?;
    let cat = StatsCatalog::analyze(&db, 1_000, 42);
    let opt = Optimizer::postgres();
    let rates = N1_16.charge_rates();

    let mut bao = Bao::new(BaoConfig {
        arms: HintSet::top_arms(6),
        window_size: n_queries,
        retrain_interval: 50,
        cache_features: true,
        enabled: true,
        bootstrap: true,
        parallel_planning: true,
        planning_threads: 0,
        shard_workers: 1,
        seed: 7,
        durability: None,
    });
    let mut pool = BufferPool::new(N1_16.buffer_pool_pages());

    let mut bao_window = 0.0f64;
    let mut pg_window = 0.0f64;
    println!("chunk | PostgreSQL (s) | Bao (s) | Bao arm != default | retrains");
    println!("------+----------------+---------+--------------------+---------");
    let mut non_default = 0;
    let mut retrains = 0;
    for (i, step) in workload.steps.iter().enumerate() {
        // What would PostgreSQL have done? (cache-isolated comparison)
        let pg_plan = opt.plan(&step.query, &db, &cat, HintSet::all_enabled())?;
        let mut snapshot = pool.clone();
        let pg_m =
            execute(&pg_plan.root, &step.query, &db, &mut snapshot, &opt.params, &rates)?;
        pg_window += pg_m.latency.as_secs();

        // Bao's choice actually runs.
        let sel = bao.select_plan(&opt, &step.query, &db, &cat, Some(&pool))?;
        if sel.arm != 0 {
            non_default += 1;
        }
        let m = execute(&sel.plan, &step.query, &db, &mut pool, &opt.params, &rates)?;
        bao_window += m.latency.as_secs();
        if bao.observe(sel.tree, m.latency.as_ms()).is_some() {
            retrains += 1;
        }

        if (i + 1) % 50 == 0 {
            println!(
                "{:>5} | {:>14.2} | {:>7.2} | {:>18} | {:>8}",
                format!("{}-{}", i + 1 - 49, i + 1),
                pg_window,
                bao_window,
                non_default,
                retrains
            );
            bao_window = 0.0;
            pg_window = 0.0;
            non_default = 0;
        }
    }
    println!("\nexperience size: {}   model retrains: {}", bao.experience_len(), bao.retrains());
    println!("After the first retrain Bao starts routing tail queries to hinted plans");
    println!("while leaving already-optimal queries on the default optimizer.");
    Ok(())
}
