//! Quickstart: the full stack in one file.
//!
//! Builds a small database, parses SQL, plans it with the PostgreSQL-like
//! optimizer under different hint sets, executes each plan on the
//! cost-accurate simulator, and prints EXPLAIN output — everything Bao
//! sits on top of.
//!
//! Run with: `cargo run --release -p bao-bench --example quickstart`

use bao_exec::{execute, ChargeRates};
use bao_opt::{HintSet, Optimizer};
use bao_sql::parse_query;
use bao_stats::StatsCatalog;
use bao_storage::{BufferPool, ColumnDef, Database, DataType, Schema, Table, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Create a database: movies and their cast.
    let mut movies = Table::new(
        "movies",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("kind", DataType::Text),
            ColumnDef::new("year", DataType::Int),
        ]),
    );
    for i in 0..50_000i64 {
        let kind = if i % 4 == 0 { "tv" } else { "movie" };
        movies.insert(vec![
            Value::Int(i),
            Value::Str(kind.into()),
            Value::Int(1950 + (i * 13) % 70),
        ])?;
    }
    let mut cast = Table::new(
        "cast",
        Schema::new(vec![
            ColumnDef::new("movie_id", DataType::Int),
            ColumnDef::new("role", DataType::Int),
        ]),
    );
    for i in 0..200_000i64 {
        cast.insert(vec![Value::Int((i * 13) % 50_000), Value::Int(i % 10)])?;
    }
    let mut db = Database::new();
    db.create_table(movies)?;
    db.create_table(cast)?;
    db.create_index("movies", "id")?;
    db.create_index("movies", "year")?;
    db.create_index("cast", "movie_id")?;

    // 2. ANALYZE: build statistics for the optimizer.
    let cat = StatsCatalog::analyze(&db, 1_000, 42);

    // 3. Parse a SQL query.
    // A selective probe: the default optimizer correctly picks a
    // parameterized nested loop; disabling loop joins forces a full
    // hash-join scan of `cast` — Figure 1's "24b" direction.
    let sql = "SELECT COUNT(*) FROM movies m, cast c \
               WHERE m.id = c.movie_id AND m.id = 1500 AND m.kind = 'tv'";
    let query = parse_query(sql)?;
    println!("query: {sql}\n");

    // 4. Plan it under two hint sets and execute both.
    let opt = Optimizer::postgres();
    let rates = ChargeRates::default();
    for (name, hints) in [
        ("default optimizer", HintSet::all_enabled()),
        ("loop joins disabled", HintSet::from_masks(0b011, 0b111)),
    ] {
        let plan = opt.plan(&query, &db, &cat, hints)?;
        let mut pool = BufferPool::new(1_024);
        let metrics = execute(&plan.root, &query, &db, &mut pool, &opt.params, &rates)?;
        println!("--- {name} ({})", hints.set_statements());
        println!("{}", plan.root.explain());
        println!(
            "result: {:?}   simulated latency: {:.2} ms   physical I/O: {} pages\n",
            metrics.output[0][0],
            metrics.latency.as_ms(),
            metrics.page_misses
        );
    }
    println!("Both plans return the same count — hint sets never change semantics,");
    println!("only cost. Bao's job is picking the right one per query; see the");
    println!("`bao_learning` example for the learning loop.");
    Ok(())
}
