//! Robustness to schema change (paper Table 1's Corp workload): the wide
//! fact table is normalized mid-workload, and Bao — whose featurization
//! carries no table or column identities — keeps its trained model and
//! keeps working, while statistics are rebuilt underneath it.
//!
//! Run with: `cargo run --release -p bao-bench --example schema_change`

use bao_cloud::N1_16;
use bao_core::{Bao, BaoConfig};
use bao_exec::execute;
use bao_opt::{HintSet, Optimizer};
use bao_stats::StatsCatalog;
use bao_storage::BufferPool;
use bao_workloads::{apply_event, build_corp, CorpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut db, workload) =
        build_corp(&CorpConfig { scale: 0.1, n_queries: 200, seed: 4 })?;
    let mut cat = StatsCatalog::analyze(&db, 1_000, 4);
    let opt = Optimizer::postgres();
    let rates = N1_16.charge_rates();

    let mut bao = Bao::new(BaoConfig {
        arms: HintSet::top_arms(6),
        window_size: 200,
        retrain_interval: 40,
        cache_features: true,
        enabled: true,
        bootstrap: true,
        parallel_planning: true,
        planning_threads: 0,
        shard_workers: 1,
        seed: 4,
        durability: None,
    });
    let mut pool = BufferPool::new(N1_16.buffer_pool_pages());

    let mut window_ms = 0.0;
    for (i, step) in workload.steps.iter().enumerate() {
        if let Some(event) = &step.event {
            println!(
                ">>> query {i}: schema change! normalizing the fact table \
                 (tables before: {:?})",
                db.table_names()
            );
            apply_event(&mut db, event, 4)?;
            cat = StatsCatalog::analyze(&db, 1_000, 5);
            pool.clear();
            println!(
                ">>> tables after: {:?}; Bao keeps its {} experiences and model",
                db.table_names(),
                bao.experience_len()
            );
        }
        let sel = bao.select_plan(&opt, &step.query, &db, &cat, Some(&pool))?;
        let m = execute(&sel.plan, &step.query, &db, &mut pool, &opt.params, &rates)?;
        window_ms += m.latency.as_ms();
        bao.observe(sel.tree, m.latency.as_ms());
        if (i + 1) % 40 == 0 {
            println!(
                "queries {:>3}-{:>3}: {:>8.1} ms total ({} retrains so far)",
                i + 1 - 39,
                i + 1,
                window_ms,
                bao.retrains()
            );
            window_ms = 0.0;
        }
    }
    println!("\nNo retraining-from-scratch was needed across the schema change —");
    println!("the featurization is schema-agnostic (paper §3.1.1), and fresh");
    println!("statistics flow to the model through the plans' estimates.");
    Ok(())
}
