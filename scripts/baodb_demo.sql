-- Demo script for `baodb --script` (non-interactive mode): warms the
-- bandit on multi-join IMDb templates and records headline baselines
-- (baodb_script_qps, baodb_script_statements). Run via:
--   cargo run --release -p bao-bench --bin baodb -- --script scripts/baodb_demo.sql
\tables
SET enable_bao TO on;
SELECT COUNT(*) FROM title t WHERE t.production_year > 1990;
SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id;
SELECT COUNT(*) FROM title t, cast_info ci, person p
  WHERE t.id = ci.movie_id AND p.id = ci.person_id
  AND t.production_year > 1985;
SELECT COUNT(*) FROM title t, movie_companies mc
  WHERE t.id = mc.movie_id AND t.kind_id < 4;
SELECT COUNT(*) FROM title t, cast_info ci, movie_keyword mk
  WHERE t.id = ci.movie_id AND t.id = mk.movie_id;
EXPLAIN SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id;
SELECT COUNT(*) FROM title t, movie_info mi, movie_companies mc
  WHERE t.id = mi.movie_id AND t.id = mc.movie_id
  AND t.production_year > 1980;
SELECT COUNT(*) FROM title t, cast_info ci, person p, movie_keyword mk
  WHERE t.id = ci.movie_id AND p.id = ci.person_id AND t.id = mk.movie_id;
\bao
\q
