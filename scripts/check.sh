#!/usr/bin/env bash
# One-shot verification gate, in dependency order:
#   1. bao-lint        — workspace invariant lints (DESIGN.md §7), JSON
#                        report to results/lint_report.json
#   2. check_hermetic  — static manifest scan (via bao-lint)
#   3. build + test    — tier-1: cargo build --release && cargo test -q
#
# Run from anywhere; operates on the repo containing this script.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "== bao-lint =="
cargo run -q -p bao-lint -- --json

echo
echo "== hermetic manifests =="
"$repo/scripts/check_hermetic.sh"

echo
echo "== build (release) =="
cargo build --release

echo
echo "== test =="
cargo test -q

echo
echo "all checks passed"
