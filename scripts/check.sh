#!/usr/bin/env bash
# One-shot verification gate, in dependency order:
#   1. bao-lint        — workspace invariant lints (DESIGN.md §7), JSON
#                        report to results/lint_report.json
#   2. check_hermetic  — static manifest scan (via bao-lint)
#   3. build + test    — tier-1: cargo build --release && cargo test -q
#   4. bench smoke     — opt-in via --bench-smoke: inference_bench,
#                        serving_bench, sched_bench, cache_bench, and
#                        shard_bench, each --quick --gate, failing on a
#                        gated regression against
#                        results/bench_baselines.json
#                        (DESIGN.md §8, §9, §10, §11, §13)
#   5. race smoke      — opt-in via --race-smoke: the bao-race suites
#                        (detection fixtures + the four production
#                        suites) under --cfg bao_race, bounded so the
#                        whole pass stays within ~60s (DESIGN.md §12).
#                        Interleaving counts land in
#                        results/race_report.json
#   6. race nightly    — opt-in via --race-nightly: the production suites
#                        with BAO_RACE_UNBOUNDED=1, exploring the
#                        bounded-preemption interleaving space to
#                        completion (minutes, not seconds), then the
#                        sched_serving_handoff suite under an explicit
#                        BAO_RACE_BUDGET (default 2000 — its full space
#                        is impractically large); final counts land in
#                        results/race_report.json
#   7. crash smoke     — opt-in via --crash-smoke: the kill-at-boundary
#                        crash matrix (tests/crash_recovery.rs), 1 seed /
#                        every 4th boundary; the full matrix (3 seeds,
#                        every boundary) runs when BAO_CRASH_EXHAUSTIVE=1
#                        is already exported (DESIGN.md §14)
#
# Run from anywhere; operates on the repo containing this script.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

bench_smoke=0
race_smoke=0
race_nightly=0
crash_smoke=0
for arg in "$@"; do
    case "$arg" in
        --bench-smoke) bench_smoke=1 ;;
        --race-smoke) race_smoke=1 ;;
        --race-nightly) race_nightly=1 ;;
        --crash-smoke) crash_smoke=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== bao-lint =="
cargo run -q -p bao-lint -- --json

echo
echo "== hermetic manifests =="
"$repo/scripts/check_hermetic.sh"

echo
echo "== build (release) =="
cargo build --release

echo
echo "== test =="
cargo test -q

if [ "$bench_smoke" = 1 ]; then
    echo
    echo "== bench smoke (inference_bench --quick --gate) =="
    cargo run -q --release -p bao-bench --bin inference_bench -- --quick --gate
    echo
    echo "== bench smoke (serving_bench --quick --gate) =="
    cargo run -q --release -p bao-bench --bin serving_bench -- --quick --gate
    echo
    echo "== bench smoke (sched_bench --quick --gate) =="
    cargo run -q --release -p bao-bench --bin sched_bench -- --quick --gate
    echo
    echo "== bench smoke (cache_bench --quick --gate) =="
    cargo run -q --release -p bao-bench --bin cache_bench -- --quick --gate
    echo
    echo "== bench smoke (shard_bench --quick --gate) =="
    cargo run -q --release -p bao-bench --bin shard_bench -- --quick --gate
    echo
    echo "== bench smoke (wal_bench --quick --gate) =="
    cargo run -q --release -p bao-bench --bin wal_bench -- --quick --gate
fi

if [ "$race_smoke" = 1 ]; then
    echo
    echo "== race smoke (bao-race under --cfg bao_race) =="
    # A separate target dir keeps the instrumented build from evicting
    # the normal incremental caches (the cfg changes every crate).
    RUSTFLAGS="--cfg bao_race" CARGO_TARGET_DIR=target/race \
        cargo test -q -p bao-race
fi

if [ "$race_nightly" = 1 ]; then
    echo
    echo "== race nightly (unbounded exploration of the production suites) =="
    BAO_RACE_UNBOUNDED=1 RUSTFLAGS="--cfg bao_race" CARGO_TARGET_DIR=target/race \
        cargo test -q -p bao-race --test race_suites -- --skip sched_serving_handoff
    echo
    echo "== race nightly (sched_serving_handoff, BAO_RACE_BUDGET=${BAO_RACE_BUDGET:-2000}) =="
    # This suite's full bounded-preemption space does not terminate in
    # nightly time; an explicit budget records a reproducible first count.
    BAO_RACE_BUDGET="${BAO_RACE_BUDGET:-2000}" RUSTFLAGS="--cfg bao_race" CARGO_TARGET_DIR=target/race \
        cargo test -q -p bao-race --test race_suites sched_serving_handoff
fi

if [ "$crash_smoke" = 1 ]; then
    echo
    echo "== crash smoke (kill-at-boundary recovery matrix) =="
    cargo test -q -p bao-bench --test crash_recovery
fi

echo
echo "all checks passed"
