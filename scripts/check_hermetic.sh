#!/usr/bin/env bash
# Hermeticity gate: the workspace must build and test with no access to
# crates.io — every dependency is a local `path` crate. Run from anywhere;
# operates on the repo containing this script.
#
# Checks, in order:
#   1. No Cargo.toml names a non-path dependency (version/git/registry).
#   2. `cargo build --release --offline` succeeds with an empty CARGO_HOME
#      (so nothing can be satisfied from a warm registry cache).
#   3. `cargo test -q --offline` passes under the same conditions.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

# --- 1. Static manifest scan ------------------------------------------------
# In dependency tables, every entry must be `{ path = ... }` or
# `{ workspace = true }` resolving to one. Flag version strings, git, or
# registry sources in any crate manifest or the workspace dependency table.
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Extract dependency sections and drop table headers / blank lines.
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) ; next }
        in_deps && NF { print }
    ' "$manifest")
    bad=$(printf '%s\n' "$deps" | grep -E 'version *=|git *=|registry *=' || true)
    if [ -n "$bad" ]; then
        echo "ERROR: non-path dependency in $manifest:" >&2
        printf '%s\n' "$bad" >&2
        fail=1
    fi
    # Any dependency line must mention path= or workspace=true.
    loose=$(printf '%s\n' "$deps" | grep -vE 'path *=|workspace *= *true' || true)
    if [ -n "$loose" ]; then
        echo "ERROR: dependency without a path source in $manifest:" >&2
        printf '%s\n' "$loose" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1
echo "manifest scan: all dependencies are path-only"

# --- 2 & 3. Offline build + test against an empty registry -------------------
tmp_home="$(mktemp -d)"
trap 'rm -rf "$tmp_home"' EXIT
export CARGO_HOME="$tmp_home"

echo "building (release, offline, empty CARGO_HOME)..."
cargo build --release --offline

echo "testing (offline)..."
cargo test -q --offline

echo "hermetic check passed"
