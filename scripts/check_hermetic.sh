#!/usr/bin/env bash
# Hermeticity gate: every dependency in every workspace manifest must be
# a local `path` crate. The static scan lives in the bao-lint binary
# (`hermetic-manifest` rule, crates/lint/src/manifest.rs); this script is
# the thin CI entry point for it.
#
# With --full it additionally proves the claim dynamically: the workspace
# must build and test `--offline` with an *empty* CARGO_HOME, so nothing
# can be satisfied from crates.io or a warm registry cache.
#
# Run from anywhere; operates on the repo containing this script.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

# A non-path dependency fails in one of two ways, both caught here: the
# lint scan reports it (exit 1), or cargo already refuses to resolve the
# workspace for `cargo run` (exit 101, offline registry).
if ! cargo run -q -p bao-lint -- --only hermetic-manifest; then
    echo "ERROR: hermetic manifest scan failed" >&2
    exit 1
fi
echo "manifest scan: all dependencies are path-only"

if [ "${1:-}" = "--full" ]; then
    tmp_home="$(mktemp -d)"
    trap 'rm -rf "$tmp_home"' EXIT
    export CARGO_HOME="$tmp_home"

    echo "building (release, offline, empty CARGO_HOME)..."
    cargo build --release --offline

    echo "testing (offline)..."
    cargo test -q --offline
fi

echo "hermetic check passed"
