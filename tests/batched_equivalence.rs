//! Equivalence tests for the batched TCNN compute path: the packed
//! multi-tree kernels must reproduce the per-tree reference path on real
//! workload plans — scoring within float tolerance, training along the
//! same loss trajectory, and bit-identically across worker-thread counts.

use bao_bench::{build_workload, WorkloadName};
use bao_core::Featurizer;
use bao_models::{TcnnModel, ValueModel};
use bao_nn::{train, train_reference, FeatTree, TcnnConfig, TrainConfig, TreeCnn};
use bao_opt::{HintSet, Optimizer};
use bao_stats::StatsCatalog;

/// Featurized plans for every arm in the 49-family over `n_queries` real
/// IMDb queries — the tree set `Bao::evaluate_arms` scores.
fn workload_arm_trees(n_queries: usize, seed: u64) -> Vec<FeatTree> {
    let (db, wl) = build_workload(WorkloadName::Imdb, 0.03, n_queries, seed).unwrap();
    let cat = StatsCatalog::analyze(&db, 500, seed);
    let opt = Optimizer::postgres();
    let featurizer = Featurizer::new(false);
    let arms = HintSet::family_49();
    let mut trees = Vec::new();
    for step in wl.steps.iter().take(n_queries) {
        for &arm in &arms {
            let out = opt.plan(&step.query, &db, &cat, arm).unwrap();
            trees.push(featurizer.featurize(&out.root, &step.query, &db, None));
        }
    }
    trees
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-6)
}

/// Within `tol`, relative to the reference's scale (absolute for
/// references below 1, relative above — raw relative error explodes on
/// near-zero untrained-net outputs).
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * b.abs().max(1.0)
}

#[test]
fn predict_batch_matches_per_tree_on_workload_arms() {
    let trees = workload_arm_trees(3, 11);
    assert_eq!(trees.len(), 3 * 49);
    let net = TreeCnn::new(TcnnConfig::small(trees[0].feat_dim), 11);
    let refs: Vec<&FeatTree> = trees.iter().collect();
    let batched = net.predict_batch(&refs);
    assert_eq!(batched.len(), trees.len());
    for (i, t) in trees.iter().enumerate() {
        let scalar = net.predict(t) as f64;
        assert!(
            close(batched[i] as f64, scalar, 1e-5),
            "tree {i}: batched {} vs scalar {scalar}",
            batched[i]
        );
    }
}

#[test]
fn model_predict_batch_matches_per_tree_after_fit() {
    let trees = workload_arm_trees(2, 13);
    let targets: Vec<f64> = (0..trees.len()).map(|i| 1.0 + (i % 17) as f64).collect();
    let train_cfg = TrainConfig { max_epochs: 3, ..TrainConfig::default() };
    let mut model = TcnnModel::new(TcnnConfig::tiny(trees[0].feat_dim), train_cfg);
    model.fit(&trees, &targets, 13);
    assert!(model.is_fitted());
    let refs: Vec<&FeatTree> = trees.iter().collect();
    let batched = model.predict_batch(&refs).unwrap();
    for (i, t) in trees.iter().enumerate() {
        let scalar = model.predict(t).unwrap();
        assert!(
            close(batched[i], scalar, 1e-5),
            "tree {i}: batched {} vs scalar {scalar}",
            batched[i]
        );
    }
}

#[test]
fn batched_training_tracks_reference_loss_trajectory() {
    let trees = workload_arm_trees(2, 17);
    let targets: Vec<f32> = (0..trees.len()).map(|i| ((i * 31) % 50) as f32 / 50.0).collect();
    // The preset configs run with dropout 0.0, so the batched path
    // differs from the reference only by GEMM summation order.
    let cfg = TrainConfig {
        max_epochs: 4,
        patience: 5,
        seed: 17,
        batch_size: 16,
        shard_size: 8,
        ..TrainConfig::default()
    };
    let mut a = TreeCnn::new(TcnnConfig::tiny(trees[0].feat_dim), 17);
    let mut b = a.clone();
    let rep_ref = train_reference(&mut a, &trees, &targets, &cfg);
    let rep_bat = train(&mut b, &trees, &targets, &cfg);
    assert_eq!(rep_ref.loss_history.len(), rep_bat.loss_history.len());
    for (e, (lr, lb)) in
        rep_ref.loss_history.iter().zip(rep_bat.loss_history.iter()).enumerate()
    {
        let err = rel_err(*lb, *lr);
        assert!(err <= 1e-3, "epoch {e}: batched loss {lb} vs reference {lr} (rel {err})");
    }
}

#[test]
fn training_is_thread_count_invariant() {
    let trees = workload_arm_trees(1, 19);
    let targets: Vec<f32> = (0..trees.len()).map(|i| (i % 10) as f32 / 10.0).collect();
    let cfg = TrainConfig {
        max_epochs: 3,
        patience: 4,
        seed: 19,
        batch_size: 16,
        shard_size: 4,
        ..TrainConfig::default()
    };
    let mut one = TreeCnn::new(TcnnConfig::tiny(trees[0].feat_dim), 19);
    let mut four = one.clone();
    let rep1 = train(&mut one, &trees, &targets, &TrainConfig { threads: 1, ..cfg });
    let rep4 = train(&mut four, &trees, &targets, &TrainConfig { threads: 4, ..cfg });
    assert_eq!(rep1.loss_history, rep4.loss_history, "loss must not depend on thread count");
    for t in &trees {
        assert_eq!(
            one.predict(t),
            four.predict(t),
            "weights must be bit-identical across thread counts"
        );
    }
}
