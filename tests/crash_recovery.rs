//! Kill-at-every-boundary crash recovery (DESIGN.md §14).
//!
//! The property: truncate the WAL at *any* byte prefix — every frame
//! boundary, mid-frame (torn write), even inside the very first header
//! frame — recover, finish the workload, and both the final `RunResult`
//! and the final on-disk WAL are byte-identical to a run that never
//! crashed. Corrupt (bit-flipped) frames must likewise be detected,
//! truncated, and never replayed.
//!
//! `wall_train` is the one legitimately wall-clock field and is zeroed
//! before comparison, the workspace-wide equivalence convention. Model
//! weights are compared through the WAL itself: every retrain logs a
//! full `ModelCheckpoint` frame, so "final WAL bytes equal" pins the
//! weight trajectory bit-for-bit.
//!
//! The default run is the smoke subset (1 seed, every 4th boundary);
//! `BAO_CRASH_EXHAUSTIVE=1` runs every boundary across 3 seeds — the
//! `check.sh --crash-smoke` / nightly split.

use std::fs;
use std::path::{Path, PathBuf};

use bao_common::json::ToJson;
use bao_harness::{
    recover, recover_or_fresh, BaoSettings, ModelKind, RunConfig, RunResult, Runner,
    ServingConfig, ServingRunner, Strategy,
};
use bao_opt::HintSet;
use bao_wal::frame::{decode_frame, FrameDecode, SEGMENT_HEADER_LEN};
use bao_wal::{DurabilityConfig, FsyncPolicy, Wal};
use bao_workloads::Workload;
use bao_storage::Database;

const SCALE: f64 = 0.01;
const N_QUERIES: usize = 12;
const RETRAIN: usize = 4;

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bao-crash-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn settings(dir: Option<&Path>) -> BaoSettings {
    BaoSettings {
        arms: HintSet::top_arms(3),
        model: ModelKind::TcnnFast,
        window: N_QUERIES,
        retrain: RETRAIN,
        // Cache features ON: featurization reads buffer-pool state, so
        // byte-identity after recovery also proves the replay rebuilt
        // the pool exactly.
        cache_features: true,
        durability: dir.map(|d| {
            DurabilityConfig::new(d)
                .with_fsync(FsyncPolicy::Never)
                .with_segment_bytes(64 << 20)
        }),
        ..BaoSettings::default()
    }
}

fn run_config(seed: u64, dir: Option<&Path>) -> RunConfig {
    RunConfig {
        seed,
        stats_sample: 200,
        ..RunConfig::new(bao_cloud::N1_4, Strategy::Bao(settings(dir)))
    }
}

fn workload(seed: u64) -> (Database, Workload) {
    bao_bench::build_workload(bao_bench::WorkloadName::Imdb, SCALE, N_QUERIES, seed)
        .expect("build workload")
}

fn canonical(mut r: RunResult) -> Vec<u8> {
    r.wall_train = std::time::Duration::ZERO;
    r.to_json().to_string().into_bytes()
}

fn segment0(dir: &Path) -> PathBuf {
    dir.join("wal-000000.seg")
}

/// Byte offsets of every frame boundary in a single-segment log
/// (including the header end, i.e. "before the first frame").
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offs = vec![SEGMENT_HEADER_LEN];
    let mut off = SEGMENT_HEADER_LEN;
    while off < bytes.len() {
        match decode_frame(&bytes[off..]) {
            FrameDecode::Complete { consumed, .. } => {
                off += consumed;
                offs.push(off);
            }
            other => panic!("golden wal must be fully valid, got {other:?} at {off}"),
        }
    }
    offs
}

/// One crash case: install `bytes` as the log, recover, finish, compare.
fn assert_recovers(
    case_dir: &Path,
    bytes: &[u8],
    seed: u64,
    db: &Database,
    wl: &Workload,
    golden_result: &[u8],
    golden_wal: &[u8],
    what: &str,
) {
    let _ = fs::remove_dir_all(case_dir);
    fs::create_dir_all(case_dir).unwrap();
    fs::write(segment0(case_dir), bytes).unwrap();
    let cfg = run_config(seed, Some(case_dir));
    let result = recover_or_fresh(cfg, db.clone(), wl).unwrap_or_else(|e| {
        panic!("recovery failed for {what}: {e}");
    });
    assert_eq!(
        canonical(result),
        golden_result,
        "final RunResult diverged after {what}"
    );
    let final_wal = fs::read(segment0(case_dir)).unwrap();
    assert_eq!(final_wal, golden_wal, "final wal bytes diverged after {what}");
    let _ = fs::remove_dir_all(case_dir);
}

fn crash_matrix(seed: u64, stride: usize, root: &Path) {
    let (db, wl) = workload(seed);
    let golden_dir = root.join(format!("golden-{seed}"));
    let golden = Runner::new(run_config(seed, Some(&golden_dir)), db.clone())
        .run(&wl)
        .expect("golden run");
    assert_eq!(golden.records.len(), N_QUERIES);
    let golden_result = canonical(golden);
    let golden_wal = fs::read(segment0(&golden_dir)).unwrap();
    assert!(
        !golden_dir.join("wal-000001.seg").exists(),
        "matrix assumes a single-segment golden log"
    );

    let bounds = frame_boundaries(&golden_wal);
    // 1 header frame + (experience + outcome) per query + (checkpoint +
    // boundary) per retrain.
    let expect_frames = 1 + 2 * N_QUERIES + 2 * (N_QUERIES / RETRAIN);
    assert_eq!(bounds.len(), expect_frames + 1, "unexpected golden frame count");

    let case_dir = root.join(format!("case-{seed}"));
    for (i, pair) in bounds.windows(2).enumerate() {
        if i % stride != 0 {
            continue;
        }
        let (at, next) = (pair[0], pair[1]);
        // Clean kill exactly at a record boundary.
        assert_recovers(
            &case_dir,
            &golden_wal[..at],
            seed,
            &db,
            &wl,
            &golden_result,
            &golden_wal,
            &format!("boundary cut at byte {at} (frame {i})"),
        );
        // Torn write: kill mid-frame.
        let mid = at + (next - at) / 2;
        assert_recovers(
            &case_dir,
            &golden_wal[..mid],
            seed,
            &db,
            &wl,
            &golden_result,
            &golden_wal,
            &format!("torn cut at byte {mid} (inside frame {i})"),
        );
        // Bit rot: full-length log, one bit flipped inside this frame.
        if next > at {
            let mut rotten = golden_wal.clone();
            rotten[at + (next - at) / 2] ^= 0x20;
            assert_recovers(
                &case_dir,
                &rotten,
                seed,
                &db,
                &wl,
                &golden_result,
                &golden_wal,
                &format!("bit flip at byte {mid} (inside frame {i})"),
            );
        }
    }
    // The zero-byte and header-only prefixes (nothing valid at all).
    assert_recovers(
        &case_dir, &[], seed, &db, &wl, &golden_result, &golden_wal, "empty log file",
    );
    assert_recovers(
        &case_dir,
        &golden_wal[..3],
        seed,
        &db,
        &wl,
        &golden_result,
        &golden_wal,
        "cut inside the segment header",
    );
    let _ = fs::remove_dir_all(&golden_dir);
}

#[test]
fn kill_at_every_boundary_matches_uninterrupted_run() {
    let root = temp_root("matrix");
    let exhaustive = std::env::var("BAO_CRASH_EXHAUSTIVE").is_ok_and(|v| !v.is_empty() && v != "0");
    if exhaustive {
        for seed in [11, 12, 13] {
            crash_matrix(seed, 1, &root);
        }
    } else {
        crash_matrix(11, 4, &root);
    }
    let _ = fs::remove_dir_all(&root);
}

/// Cutting right after a committed outcome must resume at the next step
/// with the expected replay census — the report is part of the contract,
/// not just the final bytes.
#[test]
fn recovery_report_census_is_exact() {
    let root = temp_root("census");
    let seed = 21;
    let (db, wl) = workload(seed);
    let golden_dir = root.join("golden");
    Runner::new(run_config(seed, Some(&golden_dir)), db.clone()).run(&wl).unwrap();
    let golden_wal = fs::read(segment0(&golden_dir)).unwrap();
    let bounds = frame_boundaries(&golden_wal);

    // Frame layout per non-retrain query: experience, outcome. Cut after
    // the 7th query's outcome (queries 0..=6 committed; query 3 ended
    // with a retrain, adding checkpoint + boundary frames).
    // Frames: header(1) + q0..q2 (2 each) + q3 (exp, ckpt, boundary,
    // outcome = 4) + q4..q6 (2 each) = 1 + 6 + 4 + 6 = 17.
    let cut = bounds[17];
    let case_dir = root.join("case");
    fs::create_dir_all(&case_dir).unwrap();
    fs::write(segment0(&case_dir), &golden_wal[..cut]).unwrap();

    let rec = recover(run_config(seed, Some(&case_dir)), db.clone(), &wl).unwrap();
    assert_eq!(rec.resumed_at_step(), 7);
    assert_eq!(rec.report.query_outcomes, 7);
    assert_eq!(rec.report.experience_appends, 7);
    assert_eq!(rec.report.retrain_boundaries, 1);
    assert_eq!(rec.report.model_checkpoints, 1);
    assert_eq!(rec.report.frames_rolled_back, 0);
    assert!(!rec.report.torn_tail && !rec.report.corrupt_tail);
    assert_eq!(rec.report.bytes_truncated, 0);
    let result = rec.resume(&wl).unwrap();
    assert_eq!(result.records.len(), N_QUERIES);
    let _ = fs::remove_dir_all(&root);
}

/// A cut between a query's experience frame and its outcome frame is the
/// observe-vs-commit crash window: the trailing experience (and any
/// retrain) must be rolled back, physically truncated, and re-logged
/// identically by the resumed run.
#[test]
fn uncommitted_experience_rolls_back_and_truncates() {
    let root = temp_root("rollback");
    let seed = 31;
    let (db, wl) = workload(seed);
    let golden_dir = root.join("golden");
    Runner::new(run_config(seed, Some(&golden_dir)), db.clone()).run(&wl).unwrap();
    let golden_wal = fs::read(segment0(&golden_dir)).unwrap();
    let bounds = frame_boundaries(&golden_wal);

    // bounds[2] = right after q0's experience frame, before its outcome.
    let cut = bounds[2];
    let case_dir = root.join("case");
    fs::create_dir_all(&case_dir).unwrap();
    fs::write(segment0(&case_dir), &golden_wal[..cut]).unwrap();

    let rec = recover(run_config(seed, Some(&case_dir)), db.clone(), &wl).unwrap();
    assert_eq!(rec.report.frames_rolled_back, 1);
    assert_eq!(rec.resumed_at_step(), 0);
    // resume() reopened the log truncated to just the header frame.
    let scan = Wal::scan(&case_dir).unwrap();
    assert_eq!(scan.report.frames_valid, 1);
    let _ = fs::remove_dir_all(&root);
}

/// The WAL must survive segment rotation: run with tiny segments, kill
/// inside a late segment, recover across the segment chain.
#[test]
fn recovery_crosses_segment_rotation() {
    let root = temp_root("segments");
    let seed = 41;
    let (db, wl) = workload(seed);
    let golden_dir = root.join("golden");
    let mut cfg = run_config(seed, Some(&golden_dir));
    if let Strategy::Bao(s) = &mut cfg.strategy {
        s.durability = Some(
            DurabilityConfig::new(&golden_dir)
                .with_fsync(FsyncPolicy::Never)
                .with_segment_bytes(4096),
        );
    }
    let golden = Runner::new(cfg.clone(), db.clone()).run(&wl).unwrap();
    let golden_result = canonical(golden);
    let mut segs: Vec<PathBuf> = fs::read_dir(&golden_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "expected rotation to produce multiple segments");

    // Kill mid-way through the last segment.
    let case_dir = root.join("case");
    fs::create_dir_all(&case_dir).unwrap();
    for s in &segs[..segs.len() - 1] {
        fs::write(case_dir.join(s.file_name().unwrap()), fs::read(s).unwrap()).unwrap();
    }
    let last = fs::read(segs.last().unwrap()).unwrap();
    let keep = SEGMENT_HEADER_LEN + (last.len() - SEGMENT_HEADER_LEN) / 2;
    fs::write(
        case_dir.join(segs.last().unwrap().file_name().unwrap()),
        &last[..keep.min(last.len())],
    )
    .unwrap();

    let mut case_cfg = run_config(seed, Some(&case_dir));
    if let Strategy::Bao(s) = &mut case_cfg.strategy {
        s.durability = Some(
            DurabilityConfig::new(&case_dir)
                .with_fsync(FsyncPolicy::Never)
                .with_segment_bytes(4096),
        );
    }
    let result = recover_or_fresh(case_cfg, db.clone(), &wl).unwrap();
    assert_eq!(canonical(result), golden_result);
    let _ = fs::remove_dir_all(&root);
}

/// A serving-path run logs through the same WAL (group commit per wave)
/// and — because the default closed-loop serving result is bit-identical
/// to the serial path — recovers through the serial resume into the same
/// final result.
#[test]
fn serving_run_recovers_to_identical_result() {
    let root = temp_root("serving");
    let seed = 51;
    let (db, wl) = workload(seed);
    let golden_dir = root.join("golden");
    let report = ServingRunner::new(
        run_config(seed, Some(&golden_dir)),
        db.clone(),
        ServingConfig::new(4, 4),
    )
    .run(&wl)
    .unwrap();
    let golden_result = canonical(report.result);
    let golden_wal = fs::read(segment0(&golden_dir)).unwrap();

    // Cache features clamp serving waves to 1, so the serving log is
    // frame-for-frame the serial log; spot-check a couple of cuts.
    let bounds = frame_boundaries(&golden_wal);
    let case_dir = root.join("case");
    let (db2, _) = (db.clone(), ());
    for &cut in [bounds[bounds.len() / 2], bounds[bounds.len() - 2]].iter() {
        let _ = fs::remove_dir_all(&case_dir);
        fs::create_dir_all(&case_dir).unwrap();
        fs::write(segment0(&case_dir), &golden_wal[..cut]).unwrap();
        let result =
            recover_or_fresh(run_config(seed, Some(&case_dir)), db2.clone(), &wl).unwrap();
        assert_eq!(canonical(result), golden_result, "serving recovery at cut {cut}");
    }
    let _ = fs::remove_dir_all(&root);
}
