//! Cross-crate integration tests: the full pipeline from SQL text through
//! parsing, statistics, optimization, execution, and Bao's learning loop.

use bao_cloud::{N1_16, N1_4};
use bao_exec::{execute, ChargeRates};
use bao_harness::{BaoSettings, ModelKind, RunConfig, Runner, Strategy};
use bao_opt::{HintSet, Optimizer};
use bao_sql::parse_query;
use bao_stats::StatsCatalog;
use bao_storage::BufferPool;
use bao_workloads::{build_imdb, build_stack, ImdbConfig, StackConfig};

#[test]
fn sql_to_result_pipeline() {
    let db = bao_workloads::imdb::build_imdb_database(0.05, 1).unwrap();
    let cat = StatsCatalog::analyze(&db, 500, 1);
    let opt = Optimizer::postgres();
    let q = parse_query(
        "SELECT COUNT(*), MIN(t.production_year) FROM title t, cast_info ci \
         WHERE t.id = ci.movie_id AND t.kind_id = 2 AND ci.role_id <= 3",
    )
    .unwrap();
    let plan = opt.plan(&q, &db, &cat, HintSet::all_enabled()).unwrap();
    let mut pool = BufferPool::new(512);
    let m = execute(&plan.root, &q, &db, &mut pool, &opt.params, &ChargeRates::default())
        .unwrap();
    assert_eq!(m.output.len(), 1);
    let count = m.output[0][0].as_int().unwrap();
    assert!(count > 0);
    let min_year = m.output[0][1].as_float().unwrap();
    assert!((1990.0..=2019.0).contains(&min_year), "kind 2 is recent: {min_year}");
}

#[test]
fn explain_renders_for_every_workload_query() {
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.05, n_queries: 40, dynamic: false, seed: 2 }).unwrap();
    let cat = StatsCatalog::analyze(&db, 500, 2);
    let opt = Optimizer::postgres();
    for step in &wl.steps {
        let plan = opt.plan(&step.query, &db, &cat, HintSet::all_enabled()).unwrap();
        let text = plan.root.explain();
        assert!(text.contains("rows="), "{text}");
        assert!(plan.root.node_count() >= 1);
    }
}

#[test]
fn identical_runs_are_identical() {
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.05, n_queries: 40, dynamic: true, seed: 3 }).unwrap();
    let run = |db: &bao_storage::Database| {
        let mut settings = BaoSettings::fast(3);
        settings.retrain = 15;
        let mut cfg = RunConfig::new(N1_4, Strategy::Bao(settings));
        cfg.seed = 99;
        Runner::new(cfg, db.clone()).run(&wl).unwrap()
    };
    let a = run(&db);
    let b = run(&db);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.arm, rb.arm, "query {}", ra.idx);
        assert_eq!(ra.latency, rb.latency);
        assert_eq!(ra.physical_io, rb.physical_io);
    }
    assert_eq!(a.total_gpu, b.total_gpu);
}

#[test]
fn stack_drift_run_keeps_answers_consistent() {
    // After each month loads, re-running the same recent-month count must
    // see more rows, and the engine must stay consistent across hints.
    let (db, wl) = build_stack(&StackConfig {
        scale: 0.05,
        n_queries: 30,
        initial_months: 2,
        total_months: 4,
        seed: 4,
    })
    .unwrap();
    let cfg = RunConfig::new(N1_4, Strategy::Traditional);
    let res = Runner::new(cfg, db).run(&wl).unwrap();
    assert_eq!(res.records.len(), 30);
}

#[test]
fn model_kinds_all_run_through_harness() {
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.05, n_queries: 30, dynamic: false, seed: 5 }).unwrap();
    for model in [ModelKind::TcnnFast, ModelKind::RandomForest, ModelKind::Linear] {
        let mut settings = BaoSettings::fast(3);
        settings.model = model;
        settings.retrain = 10;
        let cfg = RunConfig::new(N1_16, Strategy::Bao(settings));
        let res = Runner::new(cfg, db.clone()).run(&wl).unwrap();
        assert_eq!(res.records.len(), 30, "{model:?}");
        assert!(res.total_gpu.as_ms() > 0.0, "{model:?} should retrain");
    }
}

#[test]
fn optimization_time_scales_with_arm_count() {
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.05, n_queries: 15, dynamic: false, seed: 6 }).unwrap();
    let opt_time = |arms: usize| {
        let mut cfg =
            RunConfig::new(N1_4, Strategy::Optimal { arms: HintSet::top_arms(arms) });
        cfg.sequential_arms = true;
        Runner::new(cfg, db.clone()).run(&wl).unwrap().total_opt
    };
    let t2 = opt_time(2);
    let t10 = opt_time(10);
    assert!(t10 > t2 * 2.0, "sequential planning must scale: {t2:?} vs {t10:?}");
}

#[test]
fn cloud_costs_are_consistent_with_time() {
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.05, n_queries: 20, dynamic: false, seed: 7 }).unwrap();
    let cfg = RunConfig::new(N1_16, Strategy::Traditional);
    let res = Runner::new(cfg, db).run(&wl).unwrap();
    let cost = res.cost(N1_16);
    let expected = res.workload_time().as_hours() * N1_16.usd_per_hour;
    assert!((cost.vm_usd - expected).abs() < 1e-12);
    assert_eq!(cost.gpu_usd, 0.0);
}
