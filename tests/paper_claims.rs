//! Executable checks of the paper's headline claims at reduced scale.
//! Each test pins the *shape* of a result from the evaluation section
//! (who wins, in which direction) with fixed seeds; EXPERIMENTS.md
//! records the corresponding full-size numbers.

use bao_cloud::N1_16;
use bao_common::rng_from_seed;
use bao_common::stats::percentile;
use bao_exec::{execute, ChargeRates};
use bao_harness::{BaoSettings, RunConfig, Runner, Strategy};
use bao_opt::{HintSet, Optimizer};
use bao_stats::StatsCatalog;
use bao_storage::BufferPool;
use bao_workloads::imdb::{build_imdb_database, instantiate_template};
use bao_workloads::{build_imdb, ImdbConfig};

/// Figure 1: disabling loop joins helps the 16b-like query and hurts the
/// 24b-like query — no single hint set is universally good.
#[test]
fn figure1_shape_loop_join_tradeoff() {
    let db = build_imdb_database(0.1, 42).unwrap();
    let cat = StatsCatalog::analyze(&db, 500, 42);
    let opt = Optimizer::postgres();
    let rates = ChargeRates::default();
    let no_loop = HintSet::from_masks(0b011, 0b111);

    let latency = |template: usize, hints: HintSet| {
        let mut rng = rng_from_seed(42);
        let (_, q) = instantiate_template(template, 0.1, &mut rng);
        let plan = opt.plan(&q, &db, &cat, hints).unwrap();
        let mut pool = BufferPool::new(340);
        execute(&plan.root, &q, &db, &mut pool, &opt.params, &rates)
            .unwrap()
            .latency
            .as_ms()
    };

    // 16b-like: default (loop cascade) at least 2x slower than hinted.
    let q09_default = latency(9, HintSet::all_enabled());
    let q09_hinted = latency(9, no_loop);
    assert!(
        q09_default > q09_hinted * 2.0,
        "16b-like should improve: {q09_default} vs {q09_hinted}"
    );

    // 24b-like: hinted (forced hash) at least 3x slower than default.
    let q10_default = latency(10, HintSet::all_enabled());
    let q10_hinted = latency(10, no_loop);
    assert!(
        q10_hinted > q10_default * 3.0,
        "24b-like should regress: {q10_default} vs {q10_hinted}"
    );
}

/// Figures 7/10: after training, Bao's per-query latency beats the
/// PostgreSQL-like optimizer's on the same workload suffix.
#[test]
fn bao_beats_postgres_after_training() {
    let n = 240;
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.08, n_queries: n, dynamic: true, seed: 7 }).unwrap();
    let mut settings = BaoSettings::fast(6);
    settings.window = n;
    settings.retrain = 40;
    let mut cfg = RunConfig::new(N1_16, Strategy::Bao(settings));
    cfg.seed = 7;
    let bao = Runner::new(cfg, db.clone()).run(&wl).unwrap();
    let mut cfg = RunConfig::new(N1_16, Strategy::Traditional);
    cfg.seed = 7;
    let trad = Runner::new(cfg, db).run(&wl).unwrap();

    let suffix = n / 2;
    let bao_tail: f64 =
        bao.records[suffix..].iter().map(|r| r.latency.as_ms()).sum();
    let trad_tail: f64 =
        trad.records[suffix..].iter().map(|r| r.latency.as_ms()).sum();
    assert!(
        bao_tail < trad_tail * 0.9,
        "trained Bao should win the second half: {bao_tail:.0} vs {trad_tail:.0}"
    );
}

/// Second-half per-query latencies (Bao, traditional) for one seed —
/// the raw material of the Figure 9 tail-vs-median measurement.
fn tail_latencies(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let n = 240;
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.08, n_queries: n, dynamic: true, seed }).unwrap();
    let mut settings = BaoSettings::fast(6);
    settings.window = n;
    settings.retrain = 40;
    let mut cfg = RunConfig::new(N1_16, Strategy::Bao(settings));
    cfg.seed = seed;
    let bao = Runner::new(cfg, db.clone()).run(&wl).unwrap();
    let mut cfg = RunConfig::new(N1_16, Strategy::Traditional);
    cfg.seed = seed;
    let trad = Runner::new(cfg, db).run(&wl).unwrap();

    let half = n / 2;
    let bao_lat: Vec<f64> = bao.records[half..].iter().map(|r| r.latency.as_ms()).collect();
    let trad_lat: Vec<f64> = trad.records[half..].iter().map(|r| r.latency.as_ms()).collect();
    (bao_lat, trad_lat)
}

/// Figure 9: the win concentrates in the tail — p99 improves much more
/// than the median (which the paper reports as < 5% improved). Asserted
/// over the latency distribution *pooled across five seeds* rather than
/// on one hand-picked seed: at this reduced scale most individual seeds
/// produce no catastrophic plan inside the measured window (no tail to
/// improve, ratios ≈ 1), so any single-seed assertion either curates its
/// seed or flakes. Pooling keeps the disasters in the tail of one
/// honest, seed-robust distribution — the regime Figure 9 describes.
#[test]
fn tail_latency_improves_more_than_median() {
    let seeds = [7u64, 13, 17, 23, 42];
    let mut bao_all = Vec::new();
    let mut trad_all = Vec::new();
    for seed in seeds {
        let (b, t) = tail_latencies(seed);
        println!(
            "seed {seed}: per-seed p90 ratio {:.3}",
            percentile(&b, 90.0) / percentile(&t, 90.0)
        );
        bao_all.extend(b);
        trad_all.extend(t);
    }
    let ratio = |p: f64| percentile(&bao_all, p) / percentile(&trad_all, p);
    let (p99, p90, p50) = (ratio(99.0), ratio(90.0), ratio(50.0));
    println!("pooled ratios over {} queries: p99 {p99:.3} p90 {p90:.3} p50 {p50:.3}", bao_all.len());
    assert!(p99 < 0.85, "pooled tail should improve markedly: p99 ratio {p99:.3}");
    assert!(
        p50 > 0.5,
        "pooled median should change far less than the tail: p50 ratio {p50:.3}"
    );
    // The tail win must exceed the median win — the distributional shape
    // Figure 9 is actually about.
    assert!(
        p99 < p50,
        "tail improvement should exceed median improvement: p99 {p99:.3} vs p50 {p50:.3}"
    );
}

/// Regression-only pin of the historical hand-picked seed: seed 17 is
/// known to contain a catastrophic traditional plan in the measured
/// window, and Bao must keep avoiding it. The claim itself is asserted
/// seed-robustly above; this exists to catch behavioural drift on a
/// known-bad instance, not to establish the claim.
#[test]
fn tail_latency_seed17_regression() {
    let (bao_lat, trad_lat) = tail_latencies(17);
    // ~120 second-half queries: p99 would be a single-sample statistic,
    // so p90 is the stable tail measure at single-seed granularity.
    let p90_ratio = percentile(&bao_lat, 90.0) / percentile(&trad_lat, 90.0);
    let p50_ratio = percentile(&bao_lat, 50.0) / percentile(&trad_lat, 50.0);
    assert!(p90_ratio < 0.85, "tail should improve markedly: ratio {p90_ratio:.2}");
    assert!(
        p50_ratio > 0.5,
        "median should change far less than the tail: ratio {p50_ratio:.2}"
    );
}

/// §6.3: the optimal per-query hint choice strictly dominates both the
/// default optimizer and any single fixed hint set.
#[test]
fn per_query_hints_beat_any_single_hint_set() {
    let n = 60;
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.08, n_queries: n, dynamic: false, seed: 9 }).unwrap();
    let arms = HintSet::top_arms(6);
    let mut cfg = RunConfig::new(N1_16, Strategy::Optimal { arms: arms.clone() });
    cfg.cold_cache = true;
    cfg.seed = 9;
    let oracle = Runner::new(cfg, db).run(&wl).unwrap();

    let mut per_arm_totals = vec![0.0f64; arms.len()];
    let mut optimal_total = 0.0;
    for r in &oracle.records {
        let perfs = r.arm_perfs.as_ref().unwrap();
        for (i, &p) in perfs.iter().enumerate() {
            per_arm_totals[i] += p;
        }
        optimal_total += perfs.iter().cloned().fold(f64::INFINITY, f64::min);
    }
    for (i, &total) in per_arm_totals.iter().enumerate() {
        assert!(
            optimal_total <= total + 1e-6,
            "oracle must dominate arm {i}: {optimal_total} vs {total}"
        );
    }
    // And strictly: no single arm achieves the oracle's total.
    let best_single = per_arm_totals.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        optimal_total < best_single * 0.98,
        "per-query choice should strictly beat the best fixed arm"
    );
}

/// §6.2 worst case: on the fastest-20% sub-workload Bao cannot lose by
/// more than its optimization overhead (paper: 4.2m -> 4.5m, ~7%).
#[test]
fn overhead_bounded_on_fast_queries() {
    let n = 150;
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.08, n_queries: n, dynamic: false, seed: 10 }).unwrap();
    let mut cfg = RunConfig::new(N1_16, Strategy::Traditional);
    cfg.seed = 10;
    let base = Runner::new(cfg, db.clone()).run(&wl).unwrap();
    // fastest 20%
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        base.records[a].latency.partial_cmp(&base.records[b].latency).unwrap()
    });
    let keep: std::collections::HashSet<usize> = order[..n / 5].iter().copied().collect();
    let fast = bao_workloads::Workload {
        name: "fast20".into(),
        steps: wl
            .steps
            .iter()
            .enumerate()
            .filter(|(i, _)| keep.contains(i))
            .map(|(_, s)| s.clone())
            .collect(),
    };
    let mut settings = BaoSettings::fast(6);
    settings.retrain = 10;
    let mut cfg = RunConfig::new(N1_16, Strategy::Bao(settings));
    cfg.seed = 10;
    let bao = Runner::new(cfg, db.clone()).run(&fast).unwrap();
    let mut cfg = RunConfig::new(N1_16, Strategy::Traditional);
    cfg.seed = 10;
    let trad = Runner::new(cfg, db).run(&fast).unwrap();
    assert!(
        bao.workload_time().as_ms() < trad.workload_time().as_ms() * 2.0,
        "Bao's worst case is bounded overhead: {:.0}ms vs {:.0}ms",
        bao.workload_time().as_ms(),
        trad.workload_time().as_ms()
    );
}
