//! Integration tests of the template plan cache (DESIGN.md §11): on a
//! template-heavy workload the cache must actually hit, a deterministic
//! latency fault must trigger drift eviction and re-scoring within the
//! configured window, and under overload the drifted entry must be shed
//! to arm 0 with the count surfaced in both the serving and scheduler
//! reports.

use bao_bench::{build_workload, WorkloadName};
use bao_cache::PlanCacheConfig;
use bao_common::json::ToJson;
use bao_harness::{
    BaoSettings, ExecFault, ModelKind, RunConfig, ServingConfig, ServingRunner, Strategy,
};
use bao_plan::fingerprint;
use bao_sched::{QueryArrival, SchedConfig};
use bao_storage::Database;
use bao_workloads::{Workload, WorkloadStep};

const SCALE: f64 = 0.02;
/// Tiled workload length; long enough for one retrain (the model fits at
/// observation `RETRAIN`) plus a scored tail where the cache serves.
const N: usize = 120;
const RETRAIN: usize = 60;
const TEMPLATES: usize = 3;
/// The fault lands mid-scored-tail: entries are cached (and stable) for
/// twenty steps before latencies jump.
const FAULT_STEP: usize = 80;

/// A template-heavy closed-loop workload: the first `TEMPLATES` IMDb
/// queries tiled to `N` steps. Every step `i` shares a fingerprint with
/// step `i + TEMPLATES`, so once the model is fitted the cache hits on
/// all but the first occurrence of each template. Events are dropped —
/// epoch handling is `tests/sched_equivalence.rs`'s concern.
fn template_workload(seed: u64) -> (Database, Workload) {
    let (db, wl) = build_workload(WorkloadName::Imdb, SCALE, TEMPLATES, seed).unwrap();
    let steps: Vec<WorkloadStep> = (0..N)
        .map(|i| {
            let s = &wl.steps[i % TEMPLATES];
            WorkloadStep { label: s.label.clone(), query: s.query.clone(), event: None }
        })
        .collect();
    (db, Workload { name: "imdb-templates".into(), steps })
}

fn config(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        stats_sample: 400,
        ..RunConfig::new(
            bao_cloud::N1_4,
            Strategy::Bao(BaoSettings {
                model: ModelKind::TcnnFast,
                window: N,
                retrain: RETRAIN,
                ..BaoSettings::default()
            }),
        )
    }
}

fn cache_cfg(overload_backlog: usize) -> PlanCacheConfig {
    PlanCacheConfig {
        capacity: 64,
        drift_window: 4,
        drift_threshold: 1.0,
        overload_backlog,
    }
}

#[test]
fn drift_injection_evicts_and_rescores_within_the_window() {
    let seed = 13;
    let (db, wl) = template_workload(seed);
    let distinct: std::collections::BTreeSet<_> =
        wl.steps.iter().map(|s| fingerprint(&s.query)).collect();
    assert_eq!(distinct.len(), TEMPLATES, "tiled steps must share fingerprints");

    let serving = ServingConfig::new(4, 4)
        .with_cache(cache_cfg(usize::MAX))
        .with_fault(ExecFault { from_step: FAULT_STEP, factor: 10.0 });
    let report = ServingRunner::new(config(seed), db, serving).run(&wl).unwrap();
    let stats = report.cache.expect("cached run reports stats");

    // The scored tail is dominated by repeats of three templates, so the
    // cache must hit most lookups (the bench gates this bound too).
    assert!(stats.hits > 0 && stats.hit_rate() > 0.5, "{stats:?}");

    // The 10x latency fault pushes each entry's rolling-window mean past
    // the threshold within one `drift_window` of post-fault repeats:
    // entries are evicted, not silently kept serving a stale arm.
    assert!(stats.drift_evictions >= 1, "no drift eviction: {stats:?}");

    // Re-scoring after eviction: the only retrain with lookups after it
    // is the one that *enters* scored mode, LRU never fires (capacity 64
    // >> 3 templates), so more inserts than distinct templates means an
    // evicted fingerprint went back through the full scoring pass.
    assert_eq!(stats.evictions, 0, "LRU must not fire at this capacity");
    assert!(
        stats.inserts > TEMPLATES,
        "drift-evicted templates must be re-scored and re-cached: {stats:?}"
    );
}

#[test]
fn drift_under_overload_sheds_to_arm_zero_and_reports_counts() {
    let seed = 13;
    let (db, wl) = template_workload(seed);
    // `overload_backlog: 0` treats any queued backlog as overload; the
    // closed-loop arrival plan keeps the queue deep until the very end,
    // so the post-fault drift verdicts shed instead of evicting.
    let serving = ServingConfig::new(4, 4)
        .with_cache(cache_cfg(0))
        .with_fault(ExecFault { from_step: FAULT_STEP, factor: 10.0 });
    let arrivals: Vec<QueryArrival> = (0..wl.len()).map(QueryArrival::step).collect();
    let report = ServingRunner::new(config(seed), db, serving)
        .with_sched(SchedConfig::single_tenant())
        .run_scheduled(&wl, &arrivals)
        .unwrap();

    let stats = report.serving.cache.expect("cached run reports stats");
    assert!(stats.drift_sheds >= 1, "no overload shed: {stats:?}");

    // The shed is visible on both sides: cache counters and the
    // scheduler's per-tenant telemetry agree, and both serialize.
    assert_eq!(report.sched.total_drift_shed(), stats.drift_sheds, "{stats:?}");
    let sched_json = report.sched.to_json().to_string();
    assert!(sched_json.contains("\"total_drift_shed\":"), "{sched_json}");
    let cache_json = stats.to_json().to_string();
    assert!(cache_json.contains("\"drift_sheds\":"), "{cache_json}");

    // A shed entry keeps serving: it re-pins to arm 0 and later repeats
    // of the template hit the pinned entry instead of re-scoring.
    assert!(stats.hits > 0, "{stats:?}");
}
