//! Acceptance test for the plan-IR verifier: every plan the optimizer
//! produces across a full workload run — all 49 hint-set arms per query —
//! passes `bao_plan::verify`, and raw planner output additionally passes
//! the hint-consistency check. The rejection classes themselves are unit
//! tested next to the verifier in `crates/plan/src/verify.rs`; this file
//! proves the accept side at workload scale.

use bao_exec::{execute, ChargeRates};
use bao_opt::{HintSet, Optimizer};
use bao_plan::verify::{verify, verify_with_hints};
use bao_stats::StatsCatalog;
use bao_storage::BufferPool;
use bao_workloads::{build_imdb, build_stack, ImdbConfig, StackConfig};

#[test]
fn every_arm_plan_verifies_across_an_imdb_workload() {
    let (db, wl) =
        build_imdb(&ImdbConfig { scale: 0.05, n_queries: 25, dynamic: false, seed: 11 }).unwrap();
    let cat = StatsCatalog::analyze(&db, 500, 11);
    let opt = Optimizer::postgres();
    let mut plans = 0usize;
    for step in &wl.steps {
        for hints in HintSet::family_49() {
            let out = opt.plan(&step.query, &db, &cat, hints).unwrap();
            verify(&out.root, &step.query, &db).unwrap();
            verify_with_hints(
                &out.root,
                &step.query,
                &db,
                &hints.check(opt.params.disable_cost),
            )
            .unwrap();
            plans += 1;
        }
    }
    assert_eq!(plans, wl.steps.len() * 49);
}

#[test]
fn executed_plans_verify_on_the_stack_workload() {
    let (db, wl) = build_stack(&StackConfig {
        scale: 0.05,
        n_queries: 15,
        initial_months: 3,
        total_months: 3,
        seed: 7,
    })
    .unwrap();
    let cat = StatsCatalog::analyze(&db, 500, 7);
    let opt = Optimizer::postgres();
    let mut pool = BufferPool::new(512);
    for step in &wl.steps {
        let out = opt.plan(&step.query, &db, &cat, HintSet::all_enabled()).unwrap();
        verify(&out.root, &step.query, &db).unwrap();
        // The executor itself re-verifies under debug_assertions; a
        // successful run is the end-to-end accept proof.
        execute(&out.root, &step.query, &db, &mut pool, &opt.params, &ChargeRates::default())
            .unwrap();
    }
}
