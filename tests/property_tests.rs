//! Randomized property tests over the core invariants.
//!
//! The single most important invariant of the whole system is paper §2's
//! assumption: *every hint set produces a semantically equivalent plan*.
//! Bao's correctness rests on it, so it is tested here against randomized
//! queries, alongside estimator bounds and featurization well-formedness.
//!
//! Each property runs a fixed number of cases drawn from the in-house
//! deterministic PRNG; every case is fully determined by a master seed and
//! the case index, which the panic message reports for reproduction.

use bao_common::{rng_from_seed, split_seed, Rng, Xoshiro256};
use bao_core::Featurizer;
use bao_exec::{execute, ChargeRates};
use bao_opt::{HintSet, Optimizer};
use bao_plan::CmpOp;
use bao_stats::StatsCatalog;
use bao_storage::{BufferPool, Database};
use bao_workloads::imdb::{build_imdb_database, instantiate_template, N_TEMPLATES};
use std::sync::OnceLock;

/// One shared small database (building per-case would dominate runtime).
fn shared_db() -> &'static (Database, StatsCatalog) {
    static DB: OnceLock<(Database, StatsCatalog)> = OnceLock::new();
    DB.get_or_init(|| {
        let db = build_imdb_database(0.04, 1234).expect("build db");
        let cat = StatsCatalog::analyze(&db, 400, 1234);
        (db, cat)
    })
}

/// Run `cases` deterministic iterations of `body`, handing each a fresh
/// case-seeded RNG. The case index and seed appear in any panic message.
fn check_cases(name: &str, master_seed: u64, cases: u64, mut body: impl FnMut(&mut Xoshiro256)) {
    for case in 0..cases {
        let seed = split_seed(master_seed, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = rng_from_seed(seed);
            body(&mut rng);
        }));
        if let Err(e) = result {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("property {name} failed at case {case} (seed {seed:#x}): {msg}");
        }
    }
}

/// Any template × parameter seed × hint set: same answer as the default
/// optimizer's plan, and the plan stays executable.
#[test]
fn hint_sets_never_change_results() {
    check_cases("hint_sets_never_change_results", 0xA001, 24, |gen| {
        let template = gen.gen_range(0..N_TEMPLATES);
        let qseed = gen.gen_range(0u64..5_000);
        let join_mask = gen.gen_range(1u8..8);
        let scan_mask = gen.gen_range(1u8..8);

        let (db, cat) = shared_db();
        let mut rng = rng_from_seed(qseed);
        let (_, query) = instantiate_template(template, 0.04, &mut rng);
        let opt = Optimizer::postgres();
        let rates = ChargeRates::default();

        let reference = {
            let plan = opt.plan(&query, db, cat, HintSet::all_enabled()).unwrap();
            let mut pool = BufferPool::new(256);
            execute(&plan.root, &query, db, &mut pool, &opt.params, &rates).unwrap()
        };
        let hinted = {
            let hints = HintSet::from_masks(join_mask, scan_mask);
            let plan = opt.plan(&query, db, cat, hints).unwrap();
            let mut pool = BufferPool::new(256);
            execute(&plan.root, &query, db, &mut pool, &opt.params, &rates).unwrap()
        };
        // Compare value outputs as multisets (row order is unspecified for
        // non-ORDER BY queries).
        let canon = |m: &bao_exec::ExecutionMetrics| {
            let mut rows: Vec<String> = m.output.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(canon(&reference), canon(&hinted));
        assert_eq!(reference.rows_out, hinted.rows_out);
    });
}

/// Plans produced under any hint set featurize into well-formed strict
/// binary trees with the advertised dimension.
#[test]
fn featurization_is_well_formed() {
    check_cases("featurization_is_well_formed", 0xA002, 24, |gen| {
        let template = gen.gen_range(0..N_TEMPLATES);
        let qseed = gen.gen_range(0u64..5_000);
        let cache = gen.gen_bool(0.5);

        let (db, cat) = shared_db();
        let mut rng = rng_from_seed(qseed);
        let (_, query) = instantiate_template(template, 0.04, &mut rng);
        let opt = Optimizer::postgres();
        let plan = opt.plan(&query, db, cat, HintSet::all_enabled()).unwrap();
        let f = Featurizer::new(cache);
        let tree = f.featurize(&plan.root, &query, db, None);
        assert!(tree.is_well_formed());
        assert_eq!(tree.feat_dim, f.input_dim());
        // strict binarization: every node has 0 or 2 children
        for i in 0..tree.n_nodes() {
            assert_eq!(tree.left[i] >= 0, tree.right[i] >= 0);
        }
        // exactly one one-hot bit per node
        for i in 0..tree.n_nodes() {
            let ones =
                tree.feat(i)[..bao_plan::N_OP_KINDS].iter().filter(|&&v| v == 1.0).count();
            assert_eq!(ones, 1);
        }
    });
}

/// Estimator outputs are valid probabilities and respect range
/// monotonicity.
#[test]
fn selectivities_are_probabilities() {
    check_cases("selectivities_are_probabilities", 0xA003, 24, |gen| {
        let x = gen.gen_range(-100.0f64..3000.0);
        let wider = gen.gen_range(0.0f64..500.0);

        let (_, cat) = shared_db();
        use bao_stats::{Estimator, PostgresEstimator, ResolvedPred, SampleEstimator};
        let mk = |x: f64, op| ResolvedPred { column: "production_year".into(), op, x };
        for est in [&PostgresEstimator as &dyn Estimator, &SampleEstimator as &dyn Estimator] {
            let lt = est.scan_selectivity(cat, "title", &[mk(x, CmpOp::Lt)]);
            let lt_wider = est.scan_selectivity(cat, "title", &[mk(x + wider, CmpOp::Lt)]);
            assert!((0.0..=1.0).contains(&lt), "{lt}");
            assert!(lt <= lt_wider + 1e-6, "monotone: {lt} vs {lt_wider}");
            let eq = est.scan_selectivity(cat, "title", &[mk(x, CmpOp::Eq)]);
            assert!((0.0..=1.0).contains(&eq));
        }
    });
}

/// The buffer pool never exceeds capacity and hit+miss counts add up.
#[test]
fn buffer_pool_invariants() {
    check_cases("buffer_pool_invariants", 0xA004, 24, |gen| {
        use bao_storage::{AccessKind, BufferPool, PageKey};
        let capacity = gen.gen_range(1usize..64);
        let n_accesses = gen.gen_range(1usize..200);
        let mut pool = BufferPool::new(capacity);
        for _ in 0..n_accesses {
            let object = gen.gen_range(0u32..4);
            let page = gen.gen_range(0u32..64);
            let kind = if gen.gen_bool(0.5) { AccessKind::BulkRead } else { AccessKind::Cached };
            pool.access(PageKey::new(object, page), kind);
            assert!(pool.len() <= capacity);
        }
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, stats.accesses());
        for object in 0..4u32 {
            let frac = pool.cached_fraction(object, 64);
            assert!((0.0..=1.0).contains(&frac));
        }
    });
}

/// q-error is symmetric, >= 1, and 1 only at equality (over the floored
/// domain).
#[test]
fn qerror_properties() {
    check_cases("qerror_properties", 0xA005, 24, |gen| {
        use bao_common::stats::qerror;
        let a = gen.gen_range(1.0f64..1e9);
        let b = if gen.gen_bool(0.2) { a } else { gen.gen_range(1.0f64..1e9) };
        let q = qerror(a, b);
        assert!(q >= 1.0);
        assert!((qerror(b, a) - q).abs() < 1e-9);
        if (a - b).abs() < f64::EPSILON {
            assert!((q - 1.0).abs() < 1e-12);
        }
    });
}

/// Percentiles are monotone in p and bounded by min/max.
#[test]
fn percentile_properties() {
    check_cases("percentile_properties", 0xA006, 24, |gen| {
        use bao_common::stats::percentile;
        let n = gen.gen_range(1usize..50);
        let mut xs: Vec<f64> = (0..n).map(|_| gen.gen_range(0.0f64..1e6)).collect();
        let p1 = gen.gen_range(0.0f64..100.0);
        let p2 = gen.gen_range(0.0f64..100.0);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        assert!(a <= b + 1e-9);
        xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!(a >= xs[0] - 1e-9);
        assert!(b <= xs[xs.len() - 1] + 1e-9);
    });
}

/// Order-independence of the cross-query batched arm scorer: permuting
/// the arrival order of the queries inside a coalescing window never
/// changes any query's selection. `Bao::evaluate_arms_multi` plans on a
/// worker pool that re-slots results into (query, arm) order and scores
/// through a packed forward pass whose kernels are all per-node or
/// per-tree, so each query's arm choice, predictions, and planning work
/// must be bitwise independent of its batch neighbours.
#[test]
fn coalesced_scoring_is_arrival_order_independent() {
    use bao_core::{Bao, BaoConfig};
    use bao_models::TcnnModel;
    use bao_nn::{TcnnConfig, TrainConfig};

    check_cases("coalesced_scoring_is_arrival_order_independent", 0xA008, 8, |gen| {
        let (db, cat) = shared_db();
        let opt = Optimizer::postgres();

        // A fitted Bao over a reduced arm family (order-independence
        // does not depend on arm count; 8 arms keep the case cheap).
        let cfg = BaoConfig {
            arms: HintSet::top_arms(8),
            window_size: 64,
            retrain_interval: 1_000,
            cache_features: false,
            seed: gen.gen_range(0u64..1 << 48),
            ..BaoConfig::default()
        };
        let featurizer = Featurizer::new(false);
        let dim = featurizer.input_dim();
        let model = Box::new(TcnnModel::new(
            TcnnConfig::tiny(dim),
            TrainConfig { max_epochs: 5, ..TrainConfig::default() },
        ));
        let mut bao = Bao::with_model(cfg, model);
        for _ in 0..6 {
            let template = gen.gen_range(0..N_TEMPLATES);
            let mut rng = rng_from_seed(gen.gen_range(0u64..5_000));
            let (_, q) = instantiate_template(template, 0.04, &mut rng);
            let plan = opt.plan(&q, db, cat, HintSet::all_enabled()).unwrap();
            let tree = featurizer.featurize(&plan.root, &q, db, None);
            bao.observe(tree, gen.gen_range(10.0f64..1_000.0));
        }
        bao.retrain_now();
        assert!(bao.is_model_fitted());

        // A window of distinct queries, scored in arrival order …
        let n = gen.gen_range(2usize..6);
        let queries: Vec<_> = (0..n)
            .map(|_| {
                let template = gen.gen_range(0..N_TEMPLATES);
                let mut rng = rng_from_seed(gen.gen_range(0u64..10_000));
                instantiate_template(template, 0.04, &mut rng).1
            })
            .collect();
        let refs: Vec<&_> = queries.iter().collect();
        let base = bao.evaluate_arms_multi(&opt, &refs, db, cat, None).unwrap();

        // … and again under a random permutation of arrival order.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = gen.gen_range(0..(i + 1));
            perm.swap(i, j);
        }
        let shuffled: Vec<&_> = perm.iter().map(|&i| &queries[i]).collect();
        let permuted = bao.evaluate_arms_multi(&opt, &shuffled, db, cat, None).unwrap();

        for (pos, &orig) in perm.iter().enumerate() {
            let (a, _) = &base[orig];
            let (b, _) = &permuted[pos];
            assert_eq!(a.arm, b.arm, "query {orig}: selection changed under permutation");
            assert_eq!(
                a.predictions, b.predictions,
                "query {orig}: predictions not bitwise identical under permutation"
            );
            assert_eq!(a.per_arm_work, b.per_arm_work);
            assert_eq!(a.plan, b.plan);
        }
    });
}

/// SQL round trip: rendering a workload query to SQL and re-parsing it
/// reproduces the identical AST (so `Display` and the parser agree on the
/// full supported fragment).
#[test]
fn sql_display_parse_round_trip() {
    check_cases("sql_display_parse_round_trip", 0xA007, 48, |gen| {
        let template = gen.gen_range(0..N_TEMPLATES);
        let qseed = gen.gen_range(0u64..10_000);
        let mut rng = rng_from_seed(qseed);
        let (_, query) = instantiate_template(template, 0.04, &mut rng);
        let sql = query.to_string();
        let reparsed = bao_sql::parse_query(&sql)
            .unwrap_or_else(|e| panic!("rendered SQL failed to parse: {e}\n{sql}"));
        assert_eq!(reparsed, query, "round trip changed the query: {sql}");
    });
}
