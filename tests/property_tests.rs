//! Property-based tests over the core invariants (proptest).
//!
//! The single most important invariant of the whole system is paper §2's
//! assumption: *every hint set produces a semantically equivalent plan*.
//! Bao's correctness rests on it, so it is tested here against randomized
//! queries, alongside estimator bounds and featurization well-formedness.

use bao_common::rng_from_seed;
use bao_core::Featurizer;
use bao_exec::{execute, ChargeRates};
use bao_opt::{HintSet, Optimizer};
use bao_plan::CmpOp;
use bao_stats::StatsCatalog;
use bao_storage::{BufferPool, Database};
use bao_workloads::imdb::{build_imdb_database, instantiate_template, N_TEMPLATES};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared small database (building per-case would dominate runtime).
fn shared_db() -> &'static (Database, StatsCatalog) {
    static DB: OnceLock<(Database, StatsCatalog)> = OnceLock::new();
    DB.get_or_init(|| {
        let db = build_imdb_database(0.04, 1234).expect("build db");
        let cat = StatsCatalog::analyze(&db, 400, 1234);
        (db, cat)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any template × parameter seed × hint set: same answer as the
    /// default optimizer's plan, and the plan stays executable.
    #[test]
    fn hint_sets_never_change_results(
        template in 0..N_TEMPLATES,
        qseed in 0u64..5_000,
        join_mask in 1u8..8,
        scan_mask in 1u8..8,
    ) {
        let (db, cat) = shared_db();
        let mut rng = rng_from_seed(qseed);
        let (_, query) = instantiate_template(template, 0.04, &mut rng);
        let opt = Optimizer::postgres();
        let rates = ChargeRates::default();

        let reference = {
            let plan = opt.plan(&query, db, cat, HintSet::all_enabled()).unwrap();
            let mut pool = BufferPool::new(256);
            execute(&plan.root, &query, db, &mut pool, &opt.params, &rates).unwrap()
        };
        let hinted = {
            let hints = HintSet::from_masks(join_mask, scan_mask);
            let plan = opt.plan(&query, db, cat, hints).unwrap();
            let mut pool = BufferPool::new(256);
            execute(&plan.root, &query, db, &mut pool, &opt.params, &rates).unwrap()
        };
        // Compare value outputs as multisets (row order is unspecified for
        // non-ORDER BY queries).
        let canon = |m: &bao_exec::ExecutionMetrics| {
            let mut rows: Vec<String> =
                m.output.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(canon(&reference), canon(&hinted));
        prop_assert_eq!(reference.rows_out, hinted.rows_out);
    }

    /// Plans produced under any hint set featurize into well-formed strict
    /// binary trees with the advertised dimension.
    #[test]
    fn featurization_is_well_formed(
        template in 0..N_TEMPLATES,
        qseed in 0u64..5_000,
        cache in any::<bool>(),
    ) {
        let (db, cat) = shared_db();
        let mut rng = rng_from_seed(qseed);
        let (_, query) = instantiate_template(template, 0.04, &mut rng);
        let opt = Optimizer::postgres();
        let plan = opt.plan(&query, db, cat, HintSet::all_enabled()).unwrap();
        let f = Featurizer::new(cache);
        let tree = f.featurize(&plan.root, &query, db, None);
        prop_assert!(tree.is_well_formed());
        prop_assert_eq!(tree.feat_dim, f.input_dim());
        // strict binarization: every node has 0 or 2 children
        for i in 0..tree.n_nodes() {
            prop_assert_eq!(tree.left[i] >= 0, tree.right[i] >= 0);
        }
        // exactly one one-hot bit per node
        for i in 0..tree.n_nodes() {
            let ones = tree.feat(i)[..bao_plan::N_OP_KINDS]
                .iter()
                .filter(|&&v| v == 1.0)
                .count();
            prop_assert_eq!(ones, 1);
        }
    }

    /// Estimator outputs are valid probabilities and respect range
    /// monotonicity.
    #[test]
    fn selectivities_are_probabilities(
        x in -100.0f64..3000.0,
        wider in 0.0f64..500.0,
    ) {
        let (db, cat) = shared_db();
        use bao_stats::{Estimator, PostgresEstimator, ResolvedPred, SampleEstimator};
        let mk = |x: f64, op| ResolvedPred { column: "production_year".into(), op, x };
        for est in [&PostgresEstimator as &dyn Estimator, &SampleEstimator as &dyn Estimator] {
            let lt = est.scan_selectivity(cat, "title", &[mk(x, CmpOp::Lt)]);
            let lt_wider = est.scan_selectivity(cat, "title", &[mk(x + wider, CmpOp::Lt)]);
            prop_assert!((0.0..=1.0).contains(&lt), "{lt}");
            prop_assert!(lt <= lt_wider + 1e-6, "monotone: {lt} vs {lt_wider}");
            let eq = est.scan_selectivity(cat, "title", &[mk(x, CmpOp::Eq)]);
            prop_assert!((0.0..=1.0).contains(&eq));
        }
    }

    /// The buffer pool never exceeds capacity and hit+miss counts add up.
    #[test]
    fn buffer_pool_invariants(
        capacity in 1usize..64,
        accesses in proptest::collection::vec((0u32..4, 0u32..64, any::<bool>()), 1..200),
    ) {
        use bao_storage::{AccessKind, BufferPool, PageKey};
        let mut pool = BufferPool::new(capacity);
        for (object, page, bulk) in accesses {
            let kind = if bulk { AccessKind::BulkRead } else { AccessKind::Cached };
            pool.access(PageKey::new(object, page), kind);
            prop_assert!(pool.len() <= capacity);
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses());
        for object in 0..4u32 {
            let frac = pool.cached_fraction(object, 64);
            prop_assert!((0.0..=1.0).contains(&frac));
        }
    }

    /// q-error is symmetric, >= 1, and 1 only at equality (over the
    /// floored domain).
    #[test]
    fn qerror_properties(a in 1.0f64..1e9, b in 1.0f64..1e9) {
        use bao_common::stats::qerror;
        let q = qerror(a, b);
        prop_assert!(q >= 1.0);
        prop_assert!((qerror(b, a) - q).abs() < 1e-9);
        if (a - b).abs() < f64::EPSILON {
            prop_assert!((q - 1.0).abs() < 1e-12);
        }
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_properties(
        mut xs in proptest::collection::vec(0.0f64..1e6, 1..50),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        use bao_common::stats::percentile;
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(a >= xs[0] - 1e-9);
        prop_assert!(b <= xs[xs.len() - 1] + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// SQL round trip: rendering a workload query to SQL and re-parsing it
    /// reproduces the identical AST (so `Display` and the parser agree on
    /// the full supported fragment).
    #[test]
    fn sql_display_parse_round_trip(
        template in 0..N_TEMPLATES,
        qseed in 0u64..10_000,
    ) {
        let mut rng = rng_from_seed(qseed);
        let (_, query) = instantiate_template(template, 0.04, &mut rng);
        let sql = query.to_string();
        let reparsed = bao_sql::parse_query(&sql)
            .unwrap_or_else(|e| panic!("rendered SQL failed to parse: {e}\n{sql}"));
        prop_assert_eq!(reparsed, query, "round trip changed the query: {}", sql);
    }
}
