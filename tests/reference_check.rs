//! Differential testing: the optimizer + cost-accurate executor versus a
//! brute-force reference interpreter, on randomized schemas, data, and
//! queries.
//!
//! The reference evaluates the *logical* query directly (nested loops over
//! all rows, no plans, no indexes, no optimizer) — if the engine and the
//! reference ever disagree, one of parser/planner/executor is wrong.

use bao_common::{rng_from_seed, split_seed, Rng, Xoshiro256};
use bao_exec::{execute, ChargeRates};
use bao_opt::{HintSet, Optimizer};
use bao_plan::{AggFunc, CmpOp, ColRef, JoinPred, Predicate, Query, SelectItem, TableRef};
use bao_stats::StatsCatalog;
use bao_storage::{BufferPool, ColumnDef, Database, DataType, Schema, Table, Value};

/// Build a random 3-table database (parent + two children) from a seed.
fn random_db(seed: u64, rows: usize) -> Database {
    let mut rng = rng_from_seed(seed);
    let parents = (rows / 4).max(4);
    let mut p = Table::new(
        "p",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ]),
    );
    for i in 0..parents {
        p.insert(vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..10)),
            Value::Int(rng.gen_range(-50..50)),
        ])
        .unwrap();
    }
    let mut c1 = Table::new(
        "c1",
        Schema::new(vec![
            ColumnDef::new("pid", DataType::Int),
            ColumnDef::new("x", DataType::Int),
        ]),
    );
    let mut c2 = Table::new(
        "c2",
        Schema::new(vec![
            ColumnDef::new("pid", DataType::Int),
            ColumnDef::new("y", DataType::Int),
        ]),
    );
    for _ in 0..rows {
        // occasional dangling keys exercise non-matching joins
        c1.insert(vec![
            Value::Int(rng.gen_range(0..(parents as i64 + 3))),
            Value::Int(rng.gen_range(0..7)),
        ])
        .unwrap();
        c2.insert(vec![
            Value::Int(rng.gen_range(0..(parents as i64 + 3))),
            Value::Int(rng.gen_range(0..100)),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.create_table(p).unwrap();
    db.create_table(c1).unwrap();
    db.create_table(c2).unwrap();
    db.create_index("p", "id").unwrap();
    db.create_index("p", "a").unwrap();
    db.create_index("c1", "pid").unwrap();
    db.create_index("c2", "pid").unwrap();
    db
}

/// A random query over the fixed star schema: p [⋈ c1 [⋈ c2]] with random
/// predicates and a random aggregate.
fn random_query(seed: u64) -> Query {
    let mut rng = rng_from_seed(seed);
    let n_tables = rng.gen_range(1..=3usize);
    let mut q = Query {
        tables: vec![TableRef::new("p")],
        select: vec![],
        ..Default::default()
    };
    if n_tables >= 2 {
        q.tables.push(TableRef::new("c1"));
        q.joins.push(JoinPred::new(ColRef::new(0, "id"), ColRef::new(1, "pid")));
    }
    if n_tables >= 3 {
        q.tables.push(TableRef::new("c2"));
        q.joins.push(JoinPred::new(ColRef::new(0, "id"), ColRef::new(2, "pid")));
        // Sometimes close the triangle (cyclic join graph): the extra
        // edge becomes a post-join Filter in physical plans.
        if rng.gen_bool(0.4) {
            q.joins.push(JoinPred::new(ColRef::new(1, "pid"), ColRef::new(2, "pid")));
        }
    }
    let ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Ne];
    let add_pred = |q: &mut Query, t: usize, col: &str, lo: i64, hi: i64, rng: &mut Xoshiro256| {
        q.predicates.push(Predicate::new(
            ColRef::new(t, col),
            ops[rng.gen_range(0..ops.len())],
            Value::Int(rng.gen_range(lo..hi)),
        ));
    };
    for _ in 0..rng.gen_range(0..3) {
        match rng.gen_range(0..3) {
            0 => add_pred(&mut q, 0, "a", 0, 10, &mut rng),
            1 => add_pred(&mut q, 0, "b", -50, 50, &mut rng),
            _ => {
                if n_tables >= 2 {
                    add_pred(&mut q, 1, "x", 0, 7, &mut rng)
                } else {
                    add_pred(&mut q, 0, "a", 0, 10, &mut rng)
                }
            }
        }
    }
    q.select = match rng.gen_range(0..4) {
        0 => vec![SelectItem::Agg(AggFunc::CountStar)],
        1 => vec![
            SelectItem::Agg(AggFunc::CountStar),
            SelectItem::Agg(AggFunc::Sum(ColRef::new(0, "b"))),
        ],
        2 => vec![
            SelectItem::Agg(AggFunc::Min(ColRef::new(0, "b"))),
            SelectItem::Agg(AggFunc::Max(ColRef::new(0, "b"))),
        ],
        _ => vec![
            SelectItem::Column(ColRef::new(0, "a")),
            SelectItem::Agg(AggFunc::CountStar),
        ],
    };
    if matches!(q.select[0], SelectItem::Column(_)) {
        q.group_by = vec![ColRef::new(0, "a")];
    }
    q
}

/// Brute-force evaluation of the logical query.
fn reference_eval(db: &Database, q: &Query) -> Vec<Vec<Value>> {
    let tables: Vec<&Table> = q.tables.iter().map(|t| &db.by_name(&t.table).unwrap().table).collect();
    // enumerate the full cross product (tiny tables), filter by joins+preds
    let mut rows: Vec<Vec<u32>> = vec![vec![]];
    for t in &tables {
        let mut next = Vec::new();
        for r in &rows {
            for i in 0..t.row_count() as u32 {
                let mut nr = r.clone();
                nr.push(i);
                next.push(nr);
            }
        }
        rows = next;
    }
    let key = |c: &ColRef, row: &[u32]| tables[c.table].column(&c.column).unwrap().key_at(row[c.table] as usize).unwrap();
    rows.retain(|row| {
        q.joins.iter().all(|j| key(&j.left, row) == key(&j.right, row))
            && q.predicates.iter().all(|p| {
                let v = key(&p.col, row);
                let x = p.value.as_int().unwrap();
                p.op.matches(v.cmp(&x))
            })
    });

    // aggregate per group
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Vec<i64>, Vec<&Vec<u32>>> = BTreeMap::new();
    for row in &rows {
        let k: Vec<i64> = q.group_by.iter().map(|g| key(g, row)).collect();
        groups.entry(k).or_default().push(row);
    }
    if groups.is_empty() && q.group_by.is_empty() {
        groups.insert(vec![], vec![]);
    }
    let mut out = Vec::new();
    for (gk, members) in groups {
        let mut r = Vec::new();
        let mut gi = 0;
        for item in &q.select {
            match item {
                SelectItem::Column(_) => {
                    r.push(Value::Int(gk[gi]));
                    gi += 1;
                }
                SelectItem::Agg(a) => {
                    let vals: Vec<f64> = members
                        .iter()
                        .map(|row| match a.input() {
                            Some(c) => key(c, row) as f64,
                            None => 1.0,
                        })
                        .collect();
                    r.push(match a {
                        AggFunc::CountStar | AggFunc::Count(_) => {
                            Value::Int(vals.len() as i64)
                        }
                        AggFunc::Sum(_) => Value::Float(vals.iter().sum()),
                        AggFunc::Min(_) => Value::Float(
                            vals.iter().cloned().fold(f64::INFINITY, f64::min),
                        ),
                        AggFunc::Max(_) => Value::Float(
                            vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                        ),
                        AggFunc::Avg(_) => {
                            Value::Float(vals.iter().sum::<f64>() / vals.len() as f64)
                        }
                    });
                }
            }
        }
        // empty-group MIN/MAX/SUM convention: engine reports 0.0
        if members.is_empty() {
            for v in r.iter_mut() {
                if let Value::Float(f) = v {
                    if !f.is_finite() {
                        *v = Value::Float(0.0);
                    }
                }
            }
        }
        out.push(r);
    }
    out
}

fn canon(rows: &[Vec<Value>]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .map(|r| {
            let norm: Vec<Value> = r
                .iter()
                .map(|v| match v {
                    // -0.0 == 0.0 but formats differently
                    Value::Float(f) if *f == 0.0 => Value::Float(0.0),
                    other => other.clone(),
                })
                .collect();
            format!("{norm:?}")
        })
        .collect();
    v.sort();
    v
}

/// Seeded replacement for the former property-based harness: 32 randomized
/// cases per run, each fully determined by `MASTER_SEED` so any failure is
/// reproducible from the seed printed in the panic message.
#[test]
fn engine_matches_reference_interpreter() {
    const MASTER_SEED: u64 = 0xB40_CA5E;
    const CASES: u64 = 32;
    for case in 0..CASES {
        let mut gen = rng_from_seed(split_seed(MASTER_SEED, case));
        let db_seed = gen.gen_range(0u64..500);
        let q_seed = gen.gen_range(0u64..10_000);
        let join_mask = gen.gen_range(1u8..8);
        let scan_mask = gen.gen_range(1u8..8);

        let db = random_db(db_seed, 60);
        let cat = StatsCatalog::analyze(&db, 100, db_seed);
        let q = random_query(q_seed);
        let expected = reference_eval(&db, &q);

        let opt = Optimizer::postgres();
        let hints = HintSet::from_masks(join_mask, scan_mask);
        let plan = opt.plan(&q, &db, &cat, hints).unwrap();
        let mut pool = BufferPool::new(64);
        let m = execute(&plan.root, &q, &db, &mut pool, &opt.params, &ChargeRates::default())
            .unwrap();
        assert_eq!(
            canon(&m.output),
            canon(&expected),
            "case {case} (db_seed={db_seed}, q_seed={q_seed}): query {q} under {hints} \
             disagreed with reference"
        );
    }
}
