//! Contracts of the `bao-sched` admission layer (DESIGN.md §10):
//!
//! 1. The single-tenant, unlimited-bucket scheduler config is
//!    *bit-identical* (via ToJson) to the pre-sched FIFO `ServingRunner`
//!    — which is itself pinned bit-identical to the serial `Runner::run`
//!    — at concurrency 1, 4, and 8.
//! 2. Shed queries always execute arm 0 (the graceful-degradation
//!    contract) and are never dropped: every workload step still runs.
//! 3. Scheduled runs are exactly replayable: same seed, same arrivals,
//!    same report, byte for byte.

use bao_bench::{build_workload, WorkloadName};
use bao_common::json::ToJson;
use bao_common::SimDuration;
use bao_harness::{
    BaoSettings, ModelKind, RunConfig, RunResult, Runner, ServingConfig, ServingRunner, Strategy,
};
use bao_sched::{QueryArrival, SchedConfig, TenantSpec, WavePolicy};
use bao_storage::Database;
use bao_workloads::Workload;

const SCALE: f64 = 0.02;
const N_QUERIES: usize = 36;

fn settings() -> BaoSettings {
    BaoSettings {
        model: ModelKind::TcnnFast,
        window: N_QUERIES,
        retrain: 12,
        cache_features: false,
        ..BaoSettings::default()
    }
}

fn config(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        stats_sample: 400,
        ..RunConfig::new(bao_cloud::N1_4, Strategy::Bao(settings()))
    }
}

/// Serialize a run for bitwise comparison; `wall_train` is the one
/// legitimately non-deterministic (real wall-clock) field, so zero it.
fn canonical(mut r: RunResult) -> String {
    r.wall_train = std::time::Duration::ZERO;
    r.to_json().to_string()
}

fn workload_for(seed: u64) -> (Database, Workload) {
    build_workload(WorkloadName::Imdb, SCALE, N_QUERIES, seed).unwrap()
}

/// Closed-loop arrivals: every step already arrived at time zero.
fn closed_loop(n: usize, tenant_of: impl Fn(usize) -> usize) -> Vec<QueryArrival> {
    (0..n)
        .map(|i| QueryArrival { idx: i, tenant: tenant_of(i), arrival: SimDuration::ZERO })
        .collect()
}

#[test]
fn single_tenant_sched_is_bit_identical_to_fifo_serving() {
    let seed = 42;
    let (db, wl) = workload_for(seed);
    // The serial runner is the historical FIFO contract (PR 4 pinned the
    // FIFO ServingRunner byte-identical to it).
    let serial = canonical(Runner::new(config(seed), db.clone()).run(&wl).unwrap());
    for concurrency in [1usize, 4, 8] {
        let serving_cfg = ServingConfig::new(concurrency, concurrency.max(1));
        // Default closed-loop path (tenant 0 threaded through
        // QueryArrival::step under the hood).
        let default_run =
            ServingRunner::new(config(seed), db.clone(), serving_cfg).run(&wl).unwrap();
        assert_eq!(
            serial,
            canonical(default_run.result),
            "c={concurrency}: default sched diverged from the FIFO contract"
        );
        // Explicit single-tenant configs, both policies, via the
        // scheduled entry point with explicit arrivals.
        for policy in [WavePolicy::Drr, WavePolicy::Fifo] {
            let report = ServingRunner::new(config(seed), db.clone(), serving_cfg)
                .with_sched(SchedConfig::single_tenant().with_policy(policy))
                .run_scheduled(&wl, &closed_loop(N_QUERIES, |_| 0))
                .unwrap();
            assert_eq!(report.sched.total_shed(), 0);
            assert_eq!(report.sched.total_served(), N_QUERIES);
            assert_eq!(
                serial,
                canonical(report.serving.result),
                "c={concurrency} policy={policy:?}: single-tenant sched diverged"
            );
        }
    }
}

#[test]
fn shed_queries_always_execute_arm_zero_and_nothing_is_dropped() {
    let seed = 19;
    let (db, wl) = workload_for(seed);
    // Tiny queue bound plus a tight deadline on a flooded tenant forces
    // shedding; the light tenant stays clean.
    let sched = SchedConfig {
        tenants: vec![
            TenantSpec::new("light").with_weight(1),
            TenantSpec::new("heavy").with_weight(1).with_queue_depth(3),
        ],
        policy: WavePolicy::Drr,
        quantum: 1,
        shed_deadline: None,
    };
    // Three of every four steps flood the heavy tenant at time zero.
    let arrivals = closed_loop(N_QUERIES, |i| usize::from(i % 4 != 0));
    let report = ServingRunner::new(config(seed), db.clone(), ServingConfig::new(4, 4))
        .with_sched(sched)
        .run_scheduled(&wl, &arrivals)
        .unwrap();

    assert!(report.sched.total_shed() > 0, "flooded bounded queue must shed");
    assert_eq!(report.sched.tenant("light").unwrap().shed, 0);
    // Nothing dropped: every step executed exactly once.
    let mut seen = vec![0usize; N_QUERIES];
    for r in &report.serving.result.records {
        seen[r.idx] += 1;
    }
    assert!(seen.iter().all(|&c| c == 1), "each step executes exactly once: {seen:?}");
    assert_eq!(report.dispatches.len(), N_QUERIES);

    // The degradation contract: every shed dispatch executed arm 0.
    let mut checked = 0;
    for d in &report.dispatches {
        if d.shed {
            let rec = report.serving.result.records.iter().find(|r| r.idx == d.idx).unwrap();
            assert_eq!(
                rec.arm, 0,
                "shed step {} must execute arm 0 (the safe arm), got arm {}",
                d.idx, rec.arm
            );
            checked += 1;
        }
    }
    assert_eq!(checked, report.sched.total_shed());
    // Sanity: the run was not all-shed — scored queries picked real arms.
    assert!(checked < N_QUERIES);
}

#[test]
fn scheduled_runs_replay_byte_identically() {
    let seed = 7;
    let (db, wl) = workload_for(seed);
    let sched = || SchedConfig {
        tenants: vec![
            TenantSpec::new("a").with_weight(1).with_rate(4.0, 200.0),
            TenantSpec::new("b").with_weight(3),
        ],
        policy: WavePolicy::Drr,
        quantum: 1,
        shed_deadline: Some(SimDuration::from_secs(30.0)),
    };
    // Open-loop arrivals spread over sim-time, alternating tenants.
    let arrivals: Vec<QueryArrival> = (0..N_QUERIES)
        .map(|i| QueryArrival {
            idx: i,
            tenant: i % 2,
            arrival: SimDuration::from_ms(20.0 * i as f64),
        })
        .collect();
    let run = |db: Database| {
        ServingRunner::new(config(seed), db, ServingConfig::new(4, 4))
            .with_sched(sched())
            .run_scheduled(&wl, &arrivals)
            .unwrap()
    };
    let a = run(db.clone());
    let b = run(db);
    assert_eq!(canonical(a.serving.result), canonical(b.serving.result));
    assert_eq!(a.sched.to_json().to_string(), b.sched.to_json().to_string());
    assert_eq!(a.serving.makespan, b.serving.makespan);
    // The report reflects real scheduling: both tenants served work.
    assert!(a.sched.tenant("a").unwrap().served > 0);
    assert!(a.sched.tenant("b").unwrap().served > 0);
    assert!(a.sched.jain_fairness > 0.0 && a.sched.jain_fairness <= 1.0 + 1e-12);
}
