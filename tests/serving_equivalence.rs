//! Determinism contract of the concurrent serving layer: a
//! `ServingRunner` at any concurrency level and coalescing window
//! produces a `RunResult` byte-identical (via ToJson) to the serial
//! `Runner::run` path — same selections, same clocks, same experience
//! ordering, same retrain schedule — on a full 49-arm workload.

use bao_bench::{build_workload, WorkloadName};
use bao_common::json::ToJson;
use bao_harness::{
    BaoSettings, ModelKind, RunConfig, RunResult, Runner, ServingConfig, ServingRunner, Strategy,
};
use bao_storage::Database;
use bao_workloads::Workload;

const SCALE: f64 = 0.02;
const N_QUERIES: usize = 36;

/// Settings that reach scored (fitted-model) mode early so coalesced
/// waves actually form: retrain every 12 queries leaves two thirds of
/// the workload scored by the full 49-arm batch.
fn settings(cache_features: bool) -> BaoSettings {
    BaoSettings {
        model: ModelKind::TcnnFast,
        window: N_QUERIES,
        retrain: 12,
        cache_features,
        ..BaoSettings::default()
    }
}

fn config(seed: u64, cache_features: bool) -> RunConfig {
    RunConfig {
        seed,
        stats_sample: 400,
        ..RunConfig::new(bao_cloud::N1_4, Strategy::Bao(settings(cache_features)))
    }
}

/// Serialize a run for bitwise comparison. `wall_train` is real
/// wall-clock spent in `fit` (telemetry, documented as such) and is the
/// one legitimately non-deterministic field; zero it so the comparison
/// covers every simulated quantity bit-for-bit.
fn canonical(mut r: RunResult) -> String {
    r.wall_train = std::time::Duration::ZERO;
    r.to_json().to_string()
}

fn workload_for(seed: u64) -> (Database, Workload) {
    build_workload(WorkloadName::Imdb, SCALE, N_QUERIES, seed).unwrap()
}

#[test]
fn serving_is_bit_identical_to_serial_across_concurrency_and_windows() {
    for seed in [3, 19, 42] {
        let (db, wl) = workload_for(seed);
        let serial = canonical(Runner::new(config(seed, false), db.clone()).run(&wl).unwrap());
        for concurrency in [1usize, 4, 8] {
            for window in [1usize, 8] {
                let report = ServingRunner::new(
                    config(seed, false),
                    db.clone(),
                    ServingConfig::new(concurrency, window),
                )
                .run(&wl)
                .unwrap();
                assert!(
                    report.waves >= 1 && report.max_wave <= concurrency.min(window).max(1),
                    "seed {seed} c={concurrency} w={window}: waves {} max_wave {}",
                    report.waves,
                    report.max_wave
                );
                // Coalescing must actually engage once the window opens:
                // fewer waves than queries, and cross-query batches seen.
                if concurrency.min(window) > 1 {
                    assert!(
                        report.waves < N_QUERIES,
                        "seed {seed} c={concurrency} w={window}: no coalescing happened"
                    );
                    assert!(report.coalesced_trees > 0);
                }
                let concurrent = canonical(report.result);
                assert_eq!(
                    serial, concurrent,
                    "seed {seed} concurrency {concurrency} window {window}: \
                     serving run diverged from serial run"
                );
            }
        }
    }
}

#[test]
fn cache_feature_mode_clamps_waves_and_stays_identical() {
    // With cache features on, featurization reads buffer-pool state that
    // depends on every preceding execution; the serving layer must clamp
    // its waves to 1 (DESIGN.md §9) and still reproduce the serial run.
    let seed = 7;
    let (db, wl) = workload_for(seed);
    let serial = canonical(Runner::new(config(seed, true), db.clone()).run(&wl).unwrap());
    let report =
        ServingRunner::new(config(seed, true), db.clone(), ServingConfig::new(8, 8))
            .run(&wl)
            .unwrap();
    assert!(report.clamped_by_cache_features);
    assert_eq!(report.max_wave, 1, "cache-feature mode must not coalesce");
    assert_eq!(report.waves, N_QUERIES);
    assert_eq!(serial, canonical(report.result));
}

#[test]
fn inert_plan_cache_is_byte_identical_to_uncached_serving() {
    // The plan cache's no-op contract (DESIGN.md §11): serving with the
    // cache disabled (`None`) and with a size-0 cache must produce
    // byte-identical results to each other and to the serial path — a
    // size-0 cache never hits and never stores, so the wave loop must
    // be indistinguishable from the uncached one.
    let seed = 11;
    let (db, wl) = workload_for(seed);
    let serial = canonical(Runner::new(config(seed, false), db.clone()).run(&wl).unwrap());
    for concurrency in [1usize, 4, 8] {
        let uncached = ServingRunner::new(
            config(seed, false),
            db.clone(),
            ServingConfig::new(concurrency, concurrency),
        )
        .run(&wl)
        .unwrap();
        let zero_cap = bao_cache::PlanCacheConfig { capacity: 0, ..Default::default() };
        let inert = ServingRunner::new(
            config(seed, false),
            db.clone(),
            ServingConfig::new(concurrency, concurrency).with_cache(zero_cap),
        )
        .run(&wl)
        .unwrap();
        assert!(uncached.cache.is_none());
        let stats = inert.cache.expect("size-0 cache still reports stats");
        assert_eq!(stats.hits, 0, "a size-0 cache can never hit");
        assert_eq!(stats.inserts, 0, "a size-0 cache can never store");
        let a = canonical(uncached.result);
        let b = canonical(inert.result);
        assert_eq!(serial, a, "c={concurrency}: uncached serving diverged from serial");
        assert_eq!(a, b, "c={concurrency}: size-0 cache changed the serving path");
    }
}

#[test]
fn non_bao_strategies_pass_through_serving_unchanged() {
    let seed = 5;
    let (db, wl) = workload_for(seed);
    let cfg = RunConfig {
        seed,
        stats_sample: 400,
        ..RunConfig::new(bao_cloud::N1_4, Strategy::Traditional)
    };
    let serial = canonical(Runner::new(cfg.clone(), db.clone()).run(&wl).unwrap());
    let report = ServingRunner::new(cfg, db, ServingConfig::new(8, 8)).run(&wl).unwrap();
    assert_eq!(report.max_wave, 1);
    assert_eq!(serial, canonical(report.result));
}
