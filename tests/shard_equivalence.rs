//! Determinism contract of morsel-driven sharded execution (DESIGN.md
//! §13): executing any plan over {2, 4, 8} range/hash shards on the
//! work-stealing morsel pool produces output rows and `ExecutionMetrics`
//! byte-identical (via ToJson) to the single-shard serial path — same
//! filter results, same join order, same aggregate sums bit-for-bit, same
//! buffer-pool traffic — and a full Bao `Runner` workload is equally
//! invariant in `shard_workers`.

use bao_bench::{build_workload, WorkloadName};
use bao_common::json::ToJson;
use bao_exec::{execute_with, ExecConfig};
use bao_harness::{BaoSettings, ModelKind, RunConfig, RunResult, Runner, Strategy};
use bao_opt::{HintSet, Optimizer};
use bao_stats::StatsCatalog;
use bao_storage::{BufferPool, PoolStats};

const SCALE: f64 = 0.05;
const N_QUERIES: usize = 24;
const SEEDS: [u64; 3] = [3, 19, 42];

/// Tiny morsels so even the small test tables split into many jobs per
/// operator — the worst case for merge-order bugs.
fn exec_cfg(shard_workers: usize) -> ExecConfig {
    ExecConfig { shard_workers, morsel_rows: 64 }
}

/// Execute the whole workload's all-enabled plans against a shared
/// (warming) pool at the given width; returns per-query canonical metrics
/// JSON (covering rows_out, node_true_rows, latencies, page traffic, and
/// the materialized output rows).
fn run_executor(seed: u64, shard_workers: usize) -> Vec<String> {
    let (db, wl) = build_workload(WorkloadName::Imdb, SCALE, N_QUERIES, seed).unwrap();
    let cat = StatsCatalog::analyze(&db, 400, seed);
    let opt = Optimizer::postgres();
    let rates = bao_cloud::N1_4.charge_rates();
    let mut pool = BufferPool::new(bao_cloud::N1_4.buffer_pool_pages());
    let cfg = exec_cfg(shard_workers);
    let mut out = Vec::with_capacity(wl.steps.len());
    for step in &wl.steps {
        let plan = opt.plan(&step.query, &db, &cat, HintSet::all_enabled()).unwrap();
        let m = execute_with(
            &plan.root,
            &step.query,
            &db,
            &mut pool,
            &opt.params,
            &rates,
            &cfg,
        )
        .unwrap();
        out.push(m.to_json().to_string());
    }
    // The shard annotations must partition the pool totals exactly.
    let summed = pool
        .shard_stats()
        .values()
        .fold(PoolStats::default(), |acc, s| PoolStats {
            hits: acc.hits + s.hits,
            misses: acc.misses + s.misses,
        });
    assert_eq!(summed, pool.stats(), "per-shard stats must sum to the pool totals");
    out
}

#[test]
fn executor_is_bit_identical_across_shard_counts() {
    for seed in SEEDS {
        let single = run_executor(seed, 1);
        for shards in [2usize, 4, 8] {
            let sharded = run_executor(seed, shards);
            for (i, (a, b)) in single.iter().zip(sharded.iter()).enumerate() {
                assert_eq!(
                    a, b,
                    "seed {seed} shards {shards} query {i}: sharded metrics diverged"
                );
            }
        }
    }
}

fn run_config(seed: u64, shard_workers: usize) -> RunConfig {
    RunConfig {
        seed,
        stats_sample: 400,
        ..RunConfig::new(
            bao_cloud::N1_4,
            Strategy::Bao(BaoSettings {
                model: ModelKind::TcnnFast,
                window: N_QUERIES,
                retrain: 12,
                cache_features: false,
                shard_workers,
                ..BaoSettings::default()
            }),
        )
    }
}

/// `wall_train` is real wall-clock telemetry and the one legitimately
/// non-deterministic field; zero it so the comparison covers every
/// simulated quantity bit-for-bit.
fn canonical(mut r: RunResult) -> String {
    r.wall_train = std::time::Duration::ZERO;
    r.to_json().to_string()
}

#[test]
fn full_bao_runs_are_invariant_in_shard_workers() {
    for seed in SEEDS {
        let (db, wl) = build_workload(WorkloadName::Imdb, 0.02, N_QUERIES, seed).unwrap();
        let serial =
            canonical(Runner::new(run_config(seed, 1), db.clone()).run(&wl).unwrap());
        for shards in [2usize, 4, 8] {
            let sharded =
                canonical(Runner::new(run_config(seed, shards), db.clone()).run(&wl).unwrap());
            assert_eq!(
                serial, sharded,
                "seed {seed} shard_workers {shards}: Bao run diverged from serial"
            );
        }
    }
}

#[test]
fn host_sized_width_is_also_invariant() {
    // `shard_workers: 0` resolves to the host's core count — whatever
    // that is, the run must match the pinned serial result.
    let seed = 7;
    let (db, wl) = build_workload(WorkloadName::Imdb, 0.02, N_QUERIES, seed).unwrap();
    let serial = canonical(Runner::new(run_config(seed, 1), db.clone()).run(&wl).unwrap());
    let host = canonical(Runner::new(run_config(seed, 0), db.clone()).run(&wl).unwrap());
    assert_eq!(serial, host, "host-sized shard pool diverged from serial");
}
